// lock-across-parallel: no lock guard may be live in scope at a
// ParallelFor / RunShards call site.
namespace std {
class mutex {};
template <class T>
class lock_guard {
 public:
  explicit lock_guard(T&) {}
};
template <class T>
class unique_lock {
 public:
  explicit unique_lock(T&) {}
  void unlock() {}
};
}  // namespace std

namespace focus {
template <class F>
void ParallelFor(long b, long e, long g, F f) {
  (void)g;
  f(b, e);
}
struct ThreadPool {
  void RunShards(int, int);
};
}  // namespace focus

void LockAcrossParallelFor(std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  focus::ParallelFor(0, 8, 1, [](long, long) {});  // EXPECT-FINDING: lock-across-parallel
}

void LockAcrossRunShards(std::mutex& mu, focus::ThreadPool& pool) {
  std::unique_lock<std::mutex> lock(mu);
  pool.RunShards(4, 0);  // EXPECT-FINDING: lock-across-parallel
}

void LockAcrossParallelInInitializer(std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  int first = (focus::ParallelFor(0, 4, 1, [](long, long) {}), 0);  // EXPECT-FINDING: lock-across-parallel
  (void)first;
}

// Good: the guard's scope ends before the dispatch.
void LockReleasedBeforeParallel(std::mutex& mu) {
  {
    std::lock_guard<std::mutex> lock(mu);
  }
  focus::ParallelFor(0, 8, 1, [](long, long) {});
}

// Good (by this rule): the call sits in a deferred lambda body, which
// is not provably executed while the lock is held.
void LockWithDeferredLambda(std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  auto deferred = [] { focus::ParallelFor(0, 8, 1, [](long, long) {}); };
  (void)deferred;
}
