// plan-capture-safety: closures recorded into plan_hooks must capture
// only by value. Stand-ins mirror tensor/plan_hooks.h shapes.
namespace focus {
namespace plan_hooks {

template <class>
class function;
template <class R, class... A>
class function<R(A...)> {
 public:
  function() {}
  template <class G>
  function(G) {}
  template <class G>
  function& operator=(G) {
    return *this;
  }
};

using StepFn = function<void(float* const*)>;

struct StepRecord {
  StepFn fn;
};

void Record(int kind, const char* name, StepFn fn);
void RecordStep(StepRecord step);

}  // namespace plan_hooks
}  // namespace focus

void BadDefaultRef() {
  int n = 5;
  focus::plan_hooks::Record(
      0, "bad_default_ref",
      [&](float* const*) { (void)n; });  // EXPECT-FINDING: plan-capture-safety
}

void BadNamedRef() {
  int rows = 3;
  focus::plan_hooks::Record(
      0, "bad_named_ref",
      [&rows](float* const*) { (void)rows; });  // EXPECT-FINDING: plan-capture-safety
}

struct Recorder {
  int field = 0;
  void BadThis() {
    focus::plan_hooks::Record(
        0, "bad_this",
        [this](float* const*) { (void)field; });  // EXPECT-FINDING: plan-capture-safety
  }
  void BadImplicitThis() {
    focus::plan_hooks::Record(
        0, "bad_implicit_this",
        [=](float* const*) { (void)field; });  // EXPECT-FINDING: plan-capture-safety
  }
};

void BadAssignedStepFn() {
  focus::plan_hooks::StepRecord rec;
  int inner = 7;
  rec.fn =
      [&inner](float* const*) { (void)inner; };  // EXPECT-FINDING: plan-capture-safety
  focus::plan_hooks::RecordStep(rec);
}

// Good: by-value captures; the nested [&] lambda runs immediately
// inside the replay body (a ParallelFor body in the real ops) and is
// exempt by design.
void GoodValueCapture() {
  int n = 4;
  focus::plan_hooks::Record(0, "good", [n](float* const* bufs) {
    auto inner = [&](long i) {
      (void)bufs;
      (void)n;
      (void)i;
    };
    inner(0);
  });
}

// Good: a [&] lambda outside any plan_hooks recording context.
void GoodUnrelatedLambda() {
  int n = 2;
  auto local = [&] { (void)n; };
  local();
}
