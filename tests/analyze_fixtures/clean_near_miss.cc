// The closest *legal* pattern for every rule; must produce zero
// findings. Any firing here is a false-positive regression.
namespace std {
class mutex {};
template <class T>
class lock_guard {
 public:
  explicit lock_guard(T&) {}
};
template <class K, class V>
class map {
 public:
  struct iterator {
    iterator& operator++();
    bool operator!=(const iterator&) const;
    int operator*() const;
  };
  iterator begin();
  iterator end();
};
}  // namespace std

namespace focus {
template <class F>
void ParallelFor(long b, long e, long g, F f) {
  (void)g;
  f(b, e);
}
namespace obs {
class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
};
}  // namespace obs
namespace plan_hooks {
template <class>
class function;
template <class R, class... A>
class function<R(A...)> {
 public:
  function() {}
  template <class G>
  function(G) {}
};
using StepFn = function<void(float* const*)>;
void Record(int kind, const char* name, StepFn fn);
}  // namespace plan_hooks
}  // namespace focus

// unnamed-raii near-miss: named guard, plus a *non-guard* temporary
// expression statement (discarding a plain value is not a finding).
struct Result {
  int code;
};
Result Compute();
void NamedGuardAndPlainTemporary() {
  focus::obs::TraceSpan span("scope");
  (void)span;
  Compute();  // discarded, but not an RAII guard type
}

// lock-across-parallel near-miss: dispatch first, lock after.
void ParallelThenLock(std::mutex& mu) {
  focus::ParallelFor(0, 8, 1, [](long, long) {});
  std::lock_guard<std::mutex> lock(mu);
  (void)lock;
}

// plan-capture-safety near-miss: by-value and init-captures are fine.
void ValueAndInitCaptures() {
  int n = 3;
  int big = 9;
  focus::plan_hooks::Record(0, "ok", [n, stride = big + 1](float* const*) {
    (void)n;
    (void)stride;
  });
}

// raw-getenv near-miss: a helper namespace's getenv is not ::getenv.
namespace helpers {
const char* getenv(const char*);
}
const char* ThroughHelper() {
  return helpers::getenv("FOCUS_SIMD");
}

// nondeterministic-emit near-miss: emission over an ordered map.
void WriteCountersJson(std::map<int, float>& counters) {
  for (int kv : counters) {
    (void)kv;
  }
}
