// op-entry-guard: public ops (this fixture overrides the ops.h list via
// the marker below) must validate operands before dispatching work.
// The filename matches ops_*.cc deliberately — the rule keys on it.
// ANALYZE-OP-NAMES: BadDispatchFirst BadNoCheck GoodCheckFirst GoodLateDeclsThenCheck
#define FOCUS_CHECK(cond) \
  if (!(cond)) {          \
  }

namespace focus {

template <class F>
void ParallelFor(long b, long e, long g, F f) {
  (void)g;
  f(b, e);
}

struct Tensor {
  long numel() const;
  float* data() const;
};

Tensor BadDispatchFirst(const Tensor& x) {  // EXPECT-FINDING: op-entry-guard
  float* p = x.data();
  ParallelFor(0, x.numel(), 1, [p](long, long) {});
  FOCUS_CHECK(x.numel() > 0);
  return x;
}

Tensor BadNoCheck(const Tensor& x) {  // EXPECT-FINDING: op-entry-guard
  float* p = x.data();
  (void)p;
  return x;
}

Tensor GoodCheckFirst(const Tensor& x) {
  FOCUS_CHECK(x.numel() > 0);
  float* p = x.data();
  ParallelFor(0, x.numel(), 1, [p](long, long) {});
  return x;
}

// Good: leading declarations that dispatch nothing may precede the
// guard — the check must only dominate the first kernel launch.
Tensor GoodLateDeclsThenCheck(const Tensor& x) {
  const long n = x.numel();
  FOCUS_CHECK(n > 0);
  ParallelFor(0, n, 1, [](long, long) {});
  return x;
}

// Not in the public-op list: no guard required.
Tensor InternalHelper(const Tensor& x) {
  ParallelFor(0, x.numel(), 1, [](long, long) {});
  return x;
}

}  // namespace focus
