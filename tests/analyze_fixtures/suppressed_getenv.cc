// Suppression accounting: a real raw-getenv finding silenced by a
// FOCUS-ANALYZE-OK marker. The selftest asserts the marker is consumed
// (and would fail on the finding if the marker stopped matching).
extern "C" char* getenv(const char* name);

const char* SaveAndRestoreEnv() {
  // A test that must distinguish unset from empty needs the raw
  // pointer; the hardened helpers return a value either way.
  // FOCUS-ANALYZE-OK(raw-getenv): save/restore needs unset-vs-set
  return getenv("FOCUS_SIMD");
}
