// unnamed-raii: guard objects constructed as expression-statement
// temporaries die at the ';' and protect nothing.
namespace std {
class mutex {};
template <class T>
class lock_guard {
 public:
  explicit lock_guard(T&) {}
};
}  // namespace std

namespace focus {
namespace obs {
class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
};
}  // namespace obs
class InferenceModeGuard {
 public:
  InferenceModeGuard() {}
};
}  // namespace focus

void UnnamedGuards(std::mutex& mu) {
  focus::obs::TraceSpan("forecast/window");  // EXPECT-FINDING: unnamed-raii
  focus::InferenceModeGuard();  // EXPECT-FINDING: unnamed-raii
  std::lock_guard<std::mutex>{mu};  // EXPECT-FINDING: unnamed-raii
}

// Good: named locals live to the end of the enclosing scope.
void NamedGuards(std::mutex& mu) {
  focus::obs::TraceSpan span("forecast/window");
  focus::InferenceModeGuard inference;
  std::lock_guard<std::mutex> lock(mu);
  (void)span;
  (void)inference;
  (void)lock;
}
