// nondeterministic-emit: range-for over an unordered container inside
// an emission-path function. Iteration order is hash-seed dependent,
// so emitted JSON would not be byte-stable across runs/hosts.
namespace std {
template <class K, class V>
class unordered_map {
 public:
  struct iterator {
    iterator& operator++();
    bool operator!=(const iterator&) const;
    int operator*() const;
  };
  iterator begin();
  iterator end();
};
template <class K>
class unordered_set {
 public:
  struct iterator {
    iterator& operator++();
    bool operator!=(const iterator&) const;
    int operator*() const;
  };
  iterator begin();
  iterator end();
};
template <class K, class V>
class map {
 public:
  struct iterator {
    iterator& operator++();
    bool operator!=(const iterator&) const;
    int operator*() const;
  };
  iterator begin();
  iterator end();
};
}  // namespace std

void WriteReportJson(std::unordered_map<int, float>& counters) {
  for (int kv : counters) {  // EXPECT-FINDING: nondeterministic-emit
    (void)kv;
  }
}

void ExportSpanNames(std::unordered_set<int>& names) {
  for (int n : names) {  // EXPECT-FINDING: nondeterministic-emit
    (void)n;
  }
}

// Good: same loop, but not an emission path (accumulation order does
// not reach any serialized output here).
void Accumulate(std::unordered_map<int, float>& counters) {
  for (int kv : counters) {
    (void)kv;
  }
}

// Good: emission path over an *ordered* container.
void ExportSorted(std::map<int, float>& counters) {
  for (int kv : counters) {
    (void)kv;
  }
}

// Good: an unordered container used inside the body (lookup, not
// iteration source) does not make the loop nondeterministic.
void WriteRowsJson(std::map<int, float>& rows,
                   std::unordered_map<int, float>& lookup) {
  for (int kv : rows) {
    (void)kv;
    (void)lookup;
  }
}
