// raw-getenv: std::getenv outside src/utils/ bypasses the hardened
// env helpers (GetEnvOr / GetEnvIntInRangeOr) and their
// warn-and-fallback contract for malformed values.
extern "C" char* getenv(const char* name);
namespace std {
using ::getenv;
}

const char* ReadThreadsRaw() {
  return getenv("FOCUS_NUM_THREADS");  // EXPECT-FINDING: raw-getenv
}

const char* ReadSimdRaw() {
  return std::getenv("FOCUS_SIMD");  // EXPECT-FINDING: raw-getenv
}

// Good: a same-named function in another namespace is not ::getenv.
namespace fake {
const char* getenv(const char*);
}
const char* ReadThroughHelper() {
  return fake::getenv("FOCUS_NUM_THREADS");
}
