// Tests for tape-free inference execution plans (src/plan): capture
// determinism, bit-identity of the replayed program against the eager
// forward, the slab lifetime solver's non-overlap property (reconstructed
// from the DebugLayout listing), the zero-allocator-calls steady-state
// invariant, shape-guard fallback, fused-vs-unfused bit-identity, and the
// fail-safe nullptr return for forwards that use uninstrumented ops.
#include "plan/plan.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/focus_model.h"
#include "core/planned_forecaster.h"
#include "obs/metrics_registry.h"
#include "parallel/thread_pool.h"
#include "tensor/allocator.h"
#include "tensor/ops.h"
#include "tensor/simd/vec.h"
#include "tensor/tensor.h"

namespace focus {
namespace {

using core::FocusConfig;
using core::FocusModel;
using core::PlannedForecaster;
using plan::ExecutionPlan;

Tensor MakePrototypes(int64_t k, int64_t p, uint64_t seed) {
  Rng rng(seed);
  Tensor protos = Tensor::Randn({k, p}, rng);
  for (int64_t j = 0; j < k; ++j) {
    float* row = protos.data() + j * p;
    float mean = 0;
    for (int64_t d = 0; d < p; ++d) mean += row[d];
    mean /= p;
    for (int64_t d = 0; d < p; ++d) row[d] -= mean;
  }
  return protos;
}

FocusConfig SmallConfig() {
  FocusConfig cfg;
  cfg.lookback = 32;
  cfg.horizon = 8;
  cfg.num_entities = 3;
  cfg.patch_len = 8;
  cfg.d_model = 16;
  cfg.readout_queries = 2;
  cfg.seed = 11;
  return cfg;
}

std::unique_ptr<FocusModel> SmallModel() {
  auto model =
      std::make_unique<FocusModel>(SmallConfig(), MakePrototypes(4, 8, 19));
  model->SetTraining(false);
  return model;
}

void ExpectSameBytes(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(a.defined());
  ASSERT_TRUE(b.defined());
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<size_t>(a.numel()) * sizeof(float)))
      << what;
}

TEST(PlanTest, CaptureCompilesFocusForward) {
  auto model = SmallModel();
  Rng rng(3);
  Tensor x = Tensor::Randn({2, 3, 32}, rng);
  auto plan = ExecutionPlan::Capture(
      [&](const Tensor& in) { return model->Forward(in); }, x);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->input_shape(), (Shape{2, 3, 32}));
  EXPECT_EQ(plan->output_shape(), (Shape{2, 3, 8}));
  EXPECT_GT(plan->stats().captured_steps, 0);
  EXPECT_GT(plan->stats().steps, 0);
  // ProtoAttn re-projects its prototypes from constants every eager
  // forward; folding must have removed at least one such step.
  EXPECT_GT(plan->stats().folded, 0);
  EXPECT_GT(plan->stats().fused, 0);
  EXPECT_GT(plan->stats().slab_bytes, 0);
  EXPECT_GT(plan->stats().flops_per_run, 0);
  EXPECT_EQ(plan->stats().steps, plan->stats().captured_steps -
                                     plan->stats().folded -
                                     plan->stats().fused);
}

TEST(PlanTest, PlannedRunBitIdenticalToEager) {
  auto model = SmallModel();
  Rng rng(4);
  Tensor x = Tensor::Randn({2, 3, 32}, rng);
  Tensor eager;
  {
    InferenceModeGuard inference;
    eager = model->Forward(x);
  }
  auto plan = ExecutionPlan::Capture(
      [&](const Tensor& in) { return model->Forward(in); }, x);
  ASSERT_NE(plan, nullptr);
  ExpectSameBytes(plan->Run(x), eager, "first replay vs eager");
  ExpectSameBytes(plan->Run(x), eager, "second replay vs eager");
}

TEST(PlanTest, CaptureIsDeterministic) {
  auto model = SmallModel();
  Rng rng(5);
  Tensor x = Tensor::Randn({1, 3, 32}, rng);
  auto fn = [&](const Tensor& in) { return model->Forward(in); };
  auto a = ExecutionPlan::Capture(fn, x);
  auto b = ExecutionPlan::Capture(fn, x);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Same model + shape -> the same program: step sequence, slab layout,
  // fold/fuse decisions, and FLOP accounting all match.
  EXPECT_EQ(a->DebugLayout(), b->DebugLayout());
  EXPECT_EQ(a->stats().captured_steps, b->stats().captured_steps);
  EXPECT_EQ(a->stats().slab_bytes, b->stats().slab_bytes);
  EXPECT_EQ(a->stats().flops_per_run, b->stats().flops_per_run);
  ExpectSameBytes(a->Run(x), b->Run(x), "two plans of the same forward");
}

// ---------------------------------------------------------------------------
// Slab lifetime property check, reconstructed from DebugLayout.
//
// Operand grammar: "arg" (the patched input), "out" (persistent output),
// "const[n]", and "slab+<bytes>[<numel>]". The written operand carries a
// "->" prefix, step-private scratch a "~" prefix. A slab range is live
// from its "->" definition to its last read before the next definition of
// the same range; scratch lives for its single step. Two byte-overlapping
// ranges must never be live at the same step.

struct SlabRange {
  int64_t begin = 0;  // bytes
  int64_t end = 0;
};

struct SlabSegment {
  SlabRange range;
  int first_step = 0;
  int last_step = 0;
};

bool ParseSlabOperand(std::string tok, bool* is_def, bool* is_scratch,
                      SlabRange* r) {
  *is_def = tok.rfind("->", 0) == 0;
  if (*is_def) tok = tok.substr(2);
  *is_scratch = !tok.empty() && tok[0] == '~';
  if (*is_scratch) tok = tok.substr(1);
  if (tok.rfind("slab+", 0) != 0) return false;
  const size_t lb = tok.find('[');
  const size_t rb = tok.find(']');
  EXPECT_NE(lb, std::string::npos) << tok;
  EXPECT_NE(rb, std::string::npos) << tok;
  const int64_t bytes = std::strtoll(tok.c_str() + 5, nullptr, 10);
  // Bracket payload is "<numel>" (f32) or "<numel>:bf16" (2-byte
  // packed values from the mixed-precision path).
  std::string payload = tok.substr(lb + 1, rb - lb - 1);
  int64_t elem_bytes = static_cast<int64_t>(sizeof(float));
  const size_t colon = payload.find(':');
  if (colon != std::string::npos) {
    EXPECT_EQ(payload.substr(colon + 1), "bf16") << tok;
    elem_bytes = 2;
    payload = payload.substr(0, colon);
  }
  const int64_t numel = std::strtoll(payload.c_str(), nullptr, 10);
  r->begin = bytes;
  r->end = bytes + numel * elem_bytes;
  return true;
}

bool BytesOverlap(const SlabRange& a, const SlabRange& b) {
  return a.begin < b.end && b.begin < a.end;
}

TEST(PlanTest, SlabLifetimesNeverOverlap) {
  auto model = SmallModel();
  Rng rng(6);
  Tensor x = Tensor::Randn({2, 3, 32}, rng);
  auto plan = ExecutionPlan::Capture(
      [&](const Tensor& in) { return model->Forward(in); }, x);
  ASSERT_NE(plan, nullptr);
  const std::string layout = plan->DebugLayout();

  // Split the listing into per-step operand token lists.
  std::vector<std::vector<std::string>> steps;
  size_t pos = layout.find('\n');
  ASSERT_NE(pos, std::string::npos);
  while (pos != std::string::npos) {
    const size_t next = layout.find('\n', pos + 1);
    std::string line = layout.substr(pos + 1, next - pos - 1);
    pos = next;
    const size_t lp = line.find('(');
    if (lp == std::string::npos) continue;
    const size_t rp = line.rfind(')');
    ASSERT_NE(rp, std::string::npos) << line;
    std::string ops = line.substr(lp + 1, rp - lp - 1);
    std::vector<std::string> toks;
    size_t start = 0;
    while (start <= ops.size() && !ops.empty()) {
      size_t comma = ops.find(", ", start);
      toks.push_back(ops.substr(start, comma - start));
      if (comma == std::string::npos) break;
      start = comma + 2;
    }
    steps.push_back(std::move(toks));
  }
  ASSERT_EQ(static_cast<int64_t>(steps.size()), plan->stats().steps);

  // Reconstruct live segments. `open` maps an exact byte range to its
  // current segment; a read must hit an open segment exactly.
  std::vector<SlabSegment> closed;
  std::vector<SlabSegment> open;
  auto find_open = [&](const SlabRange& r) -> SlabSegment* {
    for (SlabSegment& s : open) {
      if (s.range.begin == r.begin && s.range.end == r.end) return &s;
    }
    return nullptr;
  };
  const int64_t slab_bytes = plan->stats().slab_bytes;
  for (int i = 0; i < static_cast<int>(steps.size()); ++i) {
    for (const std::string& tok : steps[static_cast<size_t>(i)]) {
      bool is_def = false, is_scratch = false;
      SlabRange r;
      if (!ParseSlabOperand(tok, &is_def, &is_scratch, &r)) continue;
      ASSERT_GE(r.begin, 0) << "step " << i;
      ASSERT_LE(r.end, slab_bytes) << "step " << i;
      ASSERT_EQ(r.begin % 64, 0) << "unaligned slab offset at step " << i;
      if (is_def) {
        // Re-definition of an exact range closes the previous segment.
        SlabSegment* prev = find_open(r);
        if (prev != nullptr) {
          closed.push_back(*prev);
          *prev = SlabSegment{r, i, i};
        } else {
          open.push_back(SlabSegment{r, i, i});
        }
      } else if (is_scratch) {
        closed.push_back(SlabSegment{r, i, i});
      } else {
        SlabSegment* seg = find_open(r);
        ASSERT_NE(seg, nullptr)
            << "step " << i << " reads undefined slab range " << tok;
        seg->last_step = i;
      }
    }
  }
  for (const SlabSegment& s : open) closed.push_back(s);

  // The property: byte-overlapping segments have disjoint step intervals
  // (not even a shared boundary step — the packer allocates a step's
  // definitions before freeing its dying inputs).
  for (size_t a = 0; a < closed.size(); ++a) {
    for (size_t b = a + 1; b < closed.size(); ++b) {
      if (!BytesOverlap(closed[a].range, closed[b].range)) continue;
      const bool disjoint = closed[a].last_step < closed[b].first_step ||
                            closed[b].last_step < closed[a].first_step;
      EXPECT_TRUE(disjoint)
          << "slab ranges [" << closed[a].range.begin << ", "
          << closed[a].range.end << ") steps " << closed[a].first_step << "-"
          << closed[a].last_step << " and [" << closed[b].range.begin << ", "
          << closed[b].range.end << ") steps " << closed[b].first_step << "-"
          << closed[b].last_step << " overlap while both live";
    }
  }
  EXPECT_GT(closed.size(), 0u);
}

// ---------------------------------------------------------------------------

TEST(PlanTest, SteadyStateMakesZeroAllocatorCalls) {
  auto model = SmallModel();
  Rng rng(7);
  Tensor x = Tensor::Randn({2, 3, 32}, rng);
  auto plan = ExecutionPlan::Capture(
      [&](const Tensor& in) { return model->Forward(in); }, x);
  ASSERT_NE(plan, nullptr);
  plan->Run(x);  // not that Run distinguishes warm-up, but be explicit

  const AllocatorStats before = Allocator::Get().Stats();
  Tensor out;
  for (int i = 0; i < 5; ++i) out = plan->Run(x);
  const AllocatorStats after = Allocator::Get().Stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.frees_cached, before.frees_cached);
  EXPECT_EQ(after.frees_released, before.frees_released);
  ASSERT_TRUE(out.defined());
}

TEST(PlanTest, ShapeAndBackendGuard) {
  auto model = SmallModel();
  Rng rng(8);
  Tensor x = Tensor::Randn({2, 3, 32}, rng);
  auto plan = ExecutionPlan::Capture(
      [&](const Tensor& in) { return model->Forward(in); }, x);
  ASSERT_NE(plan, nullptr);
  Tensor same_shape = Tensor::Randn({2, 3, 32}, rng);
  Tensor other_batch = Tensor::Randn({4, 3, 32}, rng);
  EXPECT_TRUE(plan->Matches(same_shape));
  EXPECT_FALSE(plan->Matches(other_batch));
  EXPECT_FALSE(plan->Matches(Tensor()));
}

TEST(PlanTest, PlannedForecasterCachesPerShapeAndFallsBack) {
  auto model = SmallModel();
  PlannedForecaster forecaster(model.get());
  Rng rng(9);
  Tensor x1 = Tensor::Randn({2, 3, 32}, rng);
  Tensor x2 = Tensor::Randn({5, 3, 32}, rng);

  Tensor eager1, eager2;
  {
    InferenceModeGuard inference;
    eager1 = model->Forward(x1);
    eager2 = model->Forward(x2);
  }

  ExpectSameBytes(forecaster.Forward(x1), eager1, "shape 1, capture call");
  EXPECT_TRUE(forecaster.last_was_planned());
  ExpectSameBytes(forecaster.Forward(x1), eager1, "shape 1, replay call");
  EXPECT_TRUE(forecaster.last_was_planned());
  // A second shape compiles its own plan; the first stays cached.
  ExpectSameBytes(forecaster.Forward(x2), eager2, "shape 2");
  EXPECT_TRUE(forecaster.last_was_planned());
  ExpectSameBytes(forecaster.Forward(x1), eager1, "shape 1 after shape 2");
  EXPECT_TRUE(forecaster.last_was_planned());
  EXPECT_NE(forecaster.plan_for(x1.shape()), nullptr);
  EXPECT_NE(forecaster.plan_for(x2.shape()), nullptr);
  EXPECT_EQ(forecaster.plan_for(Shape{9, 3, 32}), nullptr);
}

TEST(PlanTest, FusedAndUnfusedRunsAreBitIdentical) {
  Rng rng(10);
  // One chain per fusion rule in the SIMD table: add+gelu,
  // mul_scalar+sigmoid, add_scalar+sqrt, mul_scalar+softmax.
  Tensor c = Tensor::Randn({6, 33}, rng);
  auto fn = [&](const Tensor& in) {
    Tensor a = Gelu(Add(in, c));
    Tensor b = Sigmoid(MulScalar(a, 0.7f));
    Tensor d = Sqrt(AddScalar(b, 1.5f));
    return SoftmaxLastDim(MulScalar(d, 0.3f));
  };
  Tensor x = Tensor::Randn({6, 33}, rng);
  Tensor eager;
  {
    InferenceModeGuard inference;
    eager = fn(x);
  }

  plan::Options fused_opts;
  plan::Options unfused_opts;
  unfused_opts.fuse = false;
  auto fused = ExecutionPlan::Capture(fn, x, fused_opts);
  auto unfused = ExecutionPlan::Capture(fn, x, unfused_opts);
  ASSERT_NE(fused, nullptr);
  ASSERT_NE(unfused, nullptr);
  EXPECT_EQ(fused->stats().fused, 4);
  EXPECT_EQ(unfused->stats().fused, 0);
  EXPECT_EQ(fused->stats().steps + 4, unfused->stats().steps);
  ExpectSameBytes(unfused->Run(x), eager, "unfused vs eager");
  ExpectSameBytes(fused->Run(x), eager, "fused vs eager");
}

// A (B, N, L) -> (B, N, L) model whose forward routes through Conv2d,
// which has no capture hook: capture must fail closed, and the
// forecaster must keep serving the shape eagerly.
class Conv2dModel : public ForecastModel {
 public:
  Conv2dModel() {
    Rng rng(12);
    w_ = RegisterParameter("w", Tensor::Randn({1, 1, 3, 3}, rng));
    b_ = RegisterParameter("b", Tensor::Zeros({1}));
  }
  Tensor Forward(const Tensor& x) override {
    Tensor h = Reshape(x, {x.size(0), 1, x.size(1), x.size(2)});
    h = Conv2d(h, w_, b_, /*stride=*/1, /*padding=*/1);
    return Reshape(h, {x.size(0), x.size(1), x.size(2)});
  }
  std::string name() const override { return "Conv2dModel"; }
  int64_t horizon() const override { return 16; }

 private:
  Tensor w_;
  Tensor b_;
};

TEST(PlanTest, UninstrumentedOpFailsCaptureAndFallsBackEager) {
  Conv2dModel model;
  model.SetTraining(false);
  Rng rng(13);
  Tensor x = Tensor::Randn({1, 4, 16}, rng);
  auto plan = ExecutionPlan::Capture(
      [&](const Tensor& in) { return model.Forward(in); }, x);
  EXPECT_EQ(plan, nullptr);

  Tensor eager;
  {
    InferenceModeGuard inference;
    eager = model.Forward(x);
  }
  PlannedForecaster forecaster(&model);
  ExpectSameBytes(forecaster.Forward(x), eager, "eager fallback");
  EXPECT_FALSE(forecaster.last_was_planned());
  // The failed shape is memoized — still eager, still correct.
  ExpectSameBytes(forecaster.Forward(x), eager, "memoized eager fallback");
  EXPECT_FALSE(forecaster.last_was_planned());
  EXPECT_EQ(forecaster.plan_for(x.shape()), nullptr);
}

TEST(PlanTest, PrewarmCompilesLadderAndFirstForwardReplays) {
  auto model = SmallModel();
  PlannedForecaster forecaster(model.get());
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  const int64_t before = registry.CounterValue("plan/prewarm");
  EXPECT_EQ(forecaster.PrewarmBatchSizes({1, 3, 32}, {1, 2, 4}), 3);
  EXPECT_EQ(registry.CounterValue("plan/prewarm") - before, 3);
  for (int64_t b : {1, 2, 4}) {
    EXPECT_NE(forecaster.plan_for(Shape{b, 3, 32}), nullptr)
        << "batch " << b;
  }
  EXPECT_EQ(forecaster.plan_for(Shape{3, 3, 32}), nullptr);

  // A prewarmed shape replays on its very first Forward — no capture.
  Rng rng(21);
  Tensor x = Tensor::Randn({2, 3, 32}, rng);
  Tensor eager;
  {
    InferenceModeGuard inference;
    eager = model->Forward(x);
  }
  ExpectSameBytes(forecaster.Forward(x), eager, "prewarmed first forward");
  EXPECT_TRUE(forecaster.last_was_planned());

  // Prewarming again is idempotent: live plans are kept, none recompiled.
  EXPECT_EQ(forecaster.PrewarmBatchSizes({1, 3, 32}, {1, 2, 4}), 0);
  EXPECT_EQ(registry.CounterValue("plan/prewarm") - before, 3);
}

TEST(PlanTest, PrewarmSkipsUncapturableShapes) {
  Conv2dModel model;
  model.SetTraining(false);
  PlannedForecaster forecaster(&model);
  EXPECT_EQ(forecaster.PrewarmBatchSizes({1, 4, 16}, {1, 2}), 0);
  EXPECT_EQ(forecaster.plan_for(Shape{1, 4, 16}), nullptr);
  // The prewarm failures are memoized; Forward serves eagerly.
  Rng rng(22);
  Tensor x = Tensor::Randn({2, 4, 16}, rng);
  Tensor eager;
  {
    InferenceModeGuard inference;
    eager = model.Forward(x);
  }
  ExpectSameBytes(forecaster.Forward(x), eager, "eager after failed prewarm");
  EXPECT_FALSE(forecaster.last_was_planned());
}

// Conv2dModel with an entry counter, to observe exactly when the
// forecaster re-attempts capture (a capture attempt costs one model
// forward on top of the eager fallback's).
class CountingConv2dModel : public Conv2dModel {
 public:
  Tensor Forward(const Tensor& x) override {
    ++forwards;
    return Conv2dModel::Forward(x);
  }
  int forwards = 0;
};

// Regression test: the failed-shape memo is keyed by SIMD backend. A
// capture that failed under one backend must be retried after the
// backend changes instead of pinning the shape eager forever.
TEST(PlanTest, FailedShapeMemoRetriedAfterBackendChange) {
  if (!simd::Avx2Available()) {
    GTEST_SKIP() << "needs two SIMD backends to switch between";
  }
  ASSERT_TRUE(simd::SetBackend(simd::Backend::kScalar));
  CountingConv2dModel model;
  model.SetTraining(false);
  Rng rng(23);
  Tensor x = Tensor::Randn({1, 4, 16}, rng);
  PlannedForecaster forecaster(&model);

  (void)forecaster.Forward(x);  // capture attempt + eager fallback
  EXPECT_EQ(model.forwards, 2);
  (void)forecaster.Forward(x);  // memoized: eager only
  EXPECT_EQ(model.forwards, 3);

  ASSERT_TRUE(simd::SetBackend(simd::Backend::kAvx2));
  // The memo was recorded under the scalar backend; with AVX2 active the
  // forecaster must retry the capture (one extra forward) rather than
  // trusting the stale entry.
  (void)forecaster.Forward(x);
  EXPECT_EQ(model.forwards, 5);
  EXPECT_FALSE(forecaster.last_was_planned());
  (void)forecaster.Forward(x);  // re-memoized under the new backend
  EXPECT_EQ(model.forwards, 6);

  simd::ReinitFromEnv();
}

TEST(PlanTest, InferenceModeBuildsNoTape) {
  Rng rng(14);
  Tensor x = Tensor::Randn({8, 8}, rng).SetRequiresGrad(true);
  InferenceModeGuard inference;
  Tensor y = Gelu(MatMul(x, x));
  EXPECT_FALSE(y.requires_grad());
  EXPECT_EQ(y.grad_fn(), nullptr);
}

}  // namespace
}  // namespace focus
