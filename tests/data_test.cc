// Tests for dataset containers, splits, normalization, windowing, the
// synthetic generator and the perturbation utilities.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/generator.h"
#include "data/instance_norm.h"
#include "data/perturb.h"
#include "data/registry.h"
#include "data/window.h"
#include "tests/test_util.h"

namespace focus {
namespace {

using data::ComputeSplits;
using data::Generate;
using data::GeneratorConfig;
using data::InstanceNorm;
using data::MakeBatches;
using data::Normalizer;
using data::PaperDatasetConfig;
using data::PaperDatasetNames;
using data::Profile;
using data::TimeSeriesDataset;
using data::WindowDataset;

TEST(DatasetTest, SplitsAreChronologicalAndProportional) {
  TimeSeriesDataset d;
  d.name = "toy";
  d.values = Tensor::Zeros({2, 1000});
  d.train_fraction = 0.6;
  d.val_fraction = 0.2;
  auto s = ComputeSplits(d);
  EXPECT_EQ(s.train_end, 600);
  EXPECT_EQ(s.val_end, 800);
  EXPECT_EQ(s.total, 1000);
}

TEST(NormalizerTest, RoundTripAndTrainOnlyStatistics) {
  Rng rng(1);
  Tensor values = Tensor::Randn({3, 200}, rng, 5.0f);
  // Shift entity 1 only in the "future" region; stats must ignore it.
  for (int64_t i = 100; i < 200; ++i) values.data()[1 * 200 + i] += 100.0f;

  Normalizer norm = Normalizer::Fit(values, /*fit_end=*/100);
  Tensor normed = norm.Normalize(values);
  // Train region of each entity is ~standardized.
  for (int64_t e = 0; e < 3; ++e) {
    double mean = 0;
    for (int64_t i = 0; i < 100; ++i) mean += normed.At({e, i});
    EXPECT_NEAR(mean / 100, 0.0, 1e-4);
  }
  // Future shift survives normalization (not leaked into stats).
  EXPECT_GT(normed.At({1, 150}), 5.0f);

  testing::ExpectTensorNear(norm.Denormalize(normed), values, 1e-2);
}

TEST(WindowTest, WindowContentsMatchSource) {
  Tensor values = Tensor::Arange(40).Reshape({2, 20});
  WindowDataset ds(values, /*lookback=*/4, /*horizon=*/2, 0, 20);
  EXPECT_EQ(ds.NumWindows(), 20 - 4 - 2 + 1);
  auto batch = ds.GetWindow(3);
  EXPECT_EQ(batch.x.shape(), (Shape{1, 2, 4}));
  EXPECT_EQ(batch.y.shape(), (Shape{1, 2, 2}));
  EXPECT_EQ(batch.x.At({0, 0, 0}), 3.0f);
  EXPECT_EQ(batch.x.At({0, 1, 0}), 23.0f);
  EXPECT_EQ(batch.y.At({0, 0, 0}), 7.0f);
  EXPECT_EQ(batch.y.At({0, 1, 1}), 28.0f);
}

TEST(WindowTest, RangeOffsetsRespected) {
  Tensor values = Tensor::Arange(30).Reshape({1, 30});
  WindowDataset ds(values, 4, 2, /*range_begin=*/10, /*range_end=*/20);
  EXPECT_EQ(ds.NumWindows(), 10 - 4 - 2 + 1);
  auto b = ds.GetWindow(0);
  EXPECT_EQ(b.x.At({0, 0, 0}), 10.0f);
}

TEST(WindowTest, BatchGather) {
  Tensor values = Tensor::Arange(30).Reshape({1, 30});
  WindowDataset ds(values, 3, 1, 0, 30);
  auto b = ds.GetBatch({0, 5, 10});
  EXPECT_EQ(b.x.shape(), (Shape{3, 1, 3}));
  EXPECT_EQ(b.x.At({1, 0, 0}), 5.0f);
  EXPECT_EQ(b.y.At({2, 0, 0}), 13.0f);
}

TEST(WindowTest, MakeBatchesCoversAllIndicesOnce) {
  Rng rng(2);
  auto batches = MakeBatches(23, 5, &rng);
  EXPECT_EQ(batches.size(), 5u);
  std::set<int64_t> seen;
  for (const auto& b : batches) {
    for (int64_t i : b) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), 23u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 22);
}

TEST(InstanceNormTest, NormalizeThenDenormalizeRoundTrips) {
  Rng rng(3);
  Tensor x = Tensor::Randn({2, 3, 16}, rng, 4.0f);
  InstanceNorm in;
  Tensor normed = in.Normalize(x);
  // Each (b, e) row standardized.
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t e = 0; e < 3; ++e) {
      double mean = 0;
      for (int64_t i = 0; i < 16; ++i) mean += normed.At({b, e, i});
      EXPECT_NEAR(mean / 16, 0.0, 1e-5);
    }
  }
  testing::ExpectTensorNear(in.Denormalize(normed), x, 1e-3);
}

TEST(GeneratorTest, DeterministicPerSeed) {
  GeneratorConfig cfg;
  cfg.num_entities = 4;
  cfg.num_steps = 300;
  cfg.seed = 9;
  Tensor a = Generate(cfg).values;
  Tensor b = Generate(cfg).values;
  testing::ExpectTensorNear(a, b, 0.0);
  cfg.seed = 10;
  Tensor c = Generate(cfg).values;
  bool differs = false;
  for (int64_t i = 0; i < a.numel() && !differs; ++i) {
    differs = a.data()[i] != c.data()[i];
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorTest, DailyPeriodicityDominatesAutocorrelation) {
  GeneratorConfig cfg;
  cfg.num_entities = 2;
  cfg.num_steps = 24 * 40;
  cfg.steps_per_day = 24;
  cfg.days_per_week = 0;  // isolate the daily cycle
  cfg.noise_std = 0.05f;
  cfg.trend_std = 0.0f;
  cfg.event_rate = 0.0f;
  cfg.common_shock_std = 0.0f;
  cfg.seed = 4;
  Tensor v = Generate(cfg).values;
  // Autocorrelation at lag = one day should clearly beat a half-day lag.
  auto autocorr = [&](int64_t entity, int64_t lag) {
    const int64_t t = v.size(1);
    const float* row = v.data() + entity * t;
    double mean = 0;
    for (int64_t i = 0; i < t; ++i) mean += row[i];
    mean /= t;
    double num = 0, den = 0;
    for (int64_t i = 0; i + lag < t; ++i) {
      num += (row[i] - mean) * (row[i + lag] - mean);
    }
    for (int64_t i = 0; i < t; ++i) den += (row[i] - mean) * (row[i] - mean);
    return num / den;
  };
  EXPECT_GT(autocorr(0, 24), autocorr(0, 12) + 0.2);
  EXPECT_GT(autocorr(0, 24), 0.5);
}

TEST(GeneratorTest, EntitiesInSameClusterCorrelate) {
  GeneratorConfig cfg;
  cfg.num_entities = 12;
  cfg.num_steps = 24 * 30;
  cfg.num_clusters = 2;
  cfg.noise_std = 0.05f;
  cfg.event_rate = 0.0f;
  cfg.seed = 5;
  Tensor v = Generate(cfg).values;
  // With only 2 clusters and 12 entities, some pair must be highly
  // correlated.
  const int64_t n = v.size(0), t = v.size(1);
  auto corr = [&](int64_t a, int64_t b) {
    const float* ra = v.data() + a * t;
    const float* rb = v.data() + b * t;
    double ma = 0, mb = 0;
    for (int64_t i = 0; i < t; ++i) {
      ma += ra[i];
      mb += rb[i];
    }
    ma /= t;
    mb /= t;
    double num = 0, da = 0, db = 0;
    for (int64_t i = 0; i < t; ++i) {
      num += (ra[i] - ma) * (rb[i] - mb);
      da += (ra[i] - ma) * (ra[i] - ma);
      db += (rb[i] - mb) * (rb[i] - mb);
    }
    return num / std::sqrt(da * db);
  };
  double best = -1;
  for (int64_t a = 0; a < n; ++a) {
    for (int64_t b = a + 1; b < n; ++b) best = std::max(best, corr(a, b));
  }
  EXPECT_GT(best, 0.8);
}

TEST(GeneratorTest, ClusterEventsCorrelateEntitiesWithinCluster) {
  // With cluster events on and one cluster, large deviations must hit all
  // entities around the same time (up to the onset lag).
  GeneratorConfig base;
  base.num_entities = 6;
  base.num_steps = 2000;
  base.num_clusters = 1;
  base.noise_std = 0.02f;
  base.event_rate = 0.0f;
  base.common_shock_std = 0.0f;
  base.seed = 77;

  GeneratorConfig with_events = base;
  with_events.cluster_event_rate = 0.01f;
  with_events.cluster_event_magnitude = 3.0f;
  with_events.cluster_event_duration = 10;
  with_events.cluster_event_max_lag = 2;

  Tensor quiet = Generate(base).values;
  Tensor loud = Generate(with_events).values;
  // The event version must have visibly higher variance of the residual
  // (difference from the quiet version would need identical rng draws, so
  // compare overall dispersion instead).
  auto dispersion = [](const Tensor& v) {
    double mean = 0;
    for (int64_t i = 0; i < v.numel(); ++i) mean += v.data()[i];
    mean /= v.numel();
    double var = 0;
    for (int64_t i = 0; i < v.numel(); ++i) {
      var += (v.data()[i] - mean) * (v.data()[i] - mean);
    }
    return var / v.numel();
  };
  EXPECT_GT(dispersion(loud), dispersion(quiet) * 1.2);

  // Events produce heavy tails: far more >3-sigma first differences than
  // the smooth periodic baseline.
  auto tail_fraction = [](const Tensor& v) {
    const int64_t n = v.size(0), t = v.size(1);
    std::vector<double> diffs;
    for (int64_t e = 0; e < n; ++e) {
      const float* row = v.data() + e * t;
      for (int64_t i = 1; i < t; ++i) diffs.push_back(row[i] - row[i - 1]);
    }
    double mean = 0;
    for (double d : diffs) mean += d;
    mean /= diffs.size();
    double var = 0;
    for (double d : diffs) var += (d - mean) * (d - mean);
    const double std = std::sqrt(var / diffs.size());
    int64_t tail = 0;
    for (double d : diffs) tail += std::fabs(d - mean) > 3 * std;
    return static_cast<double>(tail) / diffs.size();
  };
  EXPECT_GT(tail_fraction(loud), tail_fraction(quiet));
}

TEST(RegistryTest, AllPaperDatasetsGenerate) {
  for (const auto& name : PaperDatasetNames()) {
    auto cfg = PaperDatasetConfig(name, Profile::kQuick);
    auto ds = Generate(cfg);
    EXPECT_EQ(ds.name, name);
    EXPECT_GT(ds.num_entities(), 0);
    EXPECT_GT(ds.num_steps(), 1000);
    auto splits = ComputeSplits(ds);
    EXPECT_LT(splits.train_end, splits.val_end);
    // Values must be finite.
    for (int64_t i = 0; i < ds.values.numel(); i += 97) {
      EXPECT_TRUE(std::isfinite(ds.values.data()[i]));
    }
    auto stats = data::PaperStats(name);
    EXPECT_GT(stats.paper_length, 0);
  }
}

TEST(RegistryTest, EttUsesSixTwoTwoSplit) {
  auto cfg = PaperDatasetConfig("ETTh1", Profile::kQuick);
  EXPECT_NEAR(cfg.train_fraction, 0.6, 1e-9);
  EXPECT_NEAR(cfg.val_fraction, 0.2, 1e-9);
  auto traffic = PaperDatasetConfig("Traffic", Profile::kQuick);
  EXPECT_NEAR(traffic.train_fraction, 0.7, 1e-9);
}

TEST(RegistryTest, FullProfileIsLarger) {
  auto quick = PaperDatasetConfig("PEMS08", Profile::kQuick);
  auto full = PaperDatasetConfig("PEMS08", Profile::kFull);
  EXPECT_GT(full.num_entities, quick.num_entities);
  EXPECT_GT(full.num_steps, quick.num_steps);
}

TEST(PerturbTest, OutlierInjectionRatioAndMagnitude) {
  GeneratorConfig cfg;
  cfg.num_entities = 3;
  cfg.num_steps = 2000;
  cfg.seed = 6;
  auto ds = Generate(cfg);
  Tensor original = ds.values.Clone();

  Rng rng(7);
  const int64_t replaced = data::InjectOutliers(&ds, 0.1, 1500, rng);
  EXPECT_NEAR(static_cast<double>(replaced) / (3 * 1500), 0.1, 0.02);

  // Points beyond range_end untouched.
  for (int64_t e = 0; e < 3; ++e) {
    for (int64_t i = 1500; i < 2000; ++i) {
      EXPECT_EQ(ds.values.At({e, i}), original.At({e, i}));
    }
  }
  // Replaced points are far from the original mean.
  int64_t far_count = 0;
  for (int64_t e = 0; e < 3; ++e) {
    for (int64_t i = 0; i < 1500; ++i) {
      if (ds.values.At({e, i}) != original.At({e, i})) {
        far_count +=
            std::fabs(ds.values.At({e, i}) - original.At({e, i})) > 1.0f;
      }
    }
  }
  EXPECT_GT(far_count, replaced / 2);
}

TEST(PerturbTest, TestShiftOnlyAffectsTail) {
  GeneratorConfig cfg;
  cfg.num_entities = 2;
  cfg.num_steps = 1000;
  cfg.seed = 8;
  auto ds = Generate(cfg);
  Tensor original = ds.values.Clone();
  Rng rng(9);
  data::InjectTestShift(&ds, /*range_begin=*/800, /*segment=*/16,
                        /*magnitude=*/2.0f, rng);
  for (int64_t e = 0; e < 2; ++e) {
    for (int64_t i = 0; i < 800; ++i) {
      EXPECT_EQ(ds.values.At({e, i}), original.At({e, i}));
    }
  }
  double diff = 0;
  for (int64_t e = 0; e < 2; ++e) {
    for (int64_t i = 800; i < 1000; ++i) {
      diff += std::fabs(ds.values.At({e, i}) - original.At({e, i}));
    }
  }
  EXPECT_GT(diff, 1.0);
}

}  // namespace
}  // namespace focus
