// Tests for the FOCUS_DEBUG_CHECK runtime invariant layer: the NaN/Inf
// post-op guard (with producing-op attribution), the in-place aliasing
// guard, the autograd graph auditor, and the enable/disable gating itself.
//
// The guards abort the process through FOCUS_CHECK's FatalMessage, so the
// failing paths are exercised as gtest death tests.
#include <cmath>

#include <gtest/gtest.h>

#include "tensor/autograd.h"
#include "tensor/debug_guard.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "utils/check.h"

namespace focus {
namespace {

// RAII: forces the debug-check tier on/off for one test, restoring the
// environment-derived default afterwards so test order doesn't matter.
class ScopedDebugChecks {
 public:
  explicit ScopedDebugChecks(bool enabled) : prev_(debug::ChecksEnabled()) {
    debug::SetChecksEnabled(enabled);
  }
  ~ScopedDebugChecks() { debug::SetChecksEnabled(prev_); }

 private:
  bool prev_;
};

Tensor MakeParam(Shape shape, uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::Randn(std::move(shape), rng, 0.5f);
  t.SetRequiresGrad(true);
  return t;
}

TEST(DebugCheckTest, MacroIsInertWhenDisabled) {
  ScopedDebugChecks off(false);
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return false;
  };
  FOCUS_DEBUG_CHECK(count()) << "never reached";
  EXPECT_EQ(evaluations, 0) << "condition must not evaluate while disabled";
}

TEST(DebugCheckTest, MacroPassesWhenConditionHolds) {
  ScopedDebugChecks on(true);
  FOCUS_DEBUG_CHECK(1 + 1 == 2) << "arithmetic still works";
  FOCUS_DEBUG_CHECK_EQ(3, 3);
  FOCUS_DEBUG_CHECK_LT(2, 3);
}

TEST(DebugCheckDeathTest, MacroAbortsWhenEnabled) {
  ScopedDebugChecks on(true);
  EXPECT_DEATH(FOCUS_DEBUG_CHECK(false) << "tripped", "tripped");
}

// --- NaN/Inf guard ----------------------------------------------------------

TEST(DebugCheckDeathTest, NanInjectionNamesProducingOp) {
  ScopedDebugChecks on(true);
  // -1 is finite going in; Log(-1) = NaN coming out. The guard must blame
  // Log, not a downstream consumer.
  Tensor x = Tensor::Full({4}, -1.0f);
  EXPECT_DEATH(Log(x), "op 'Log' produced non-finite value");
}

TEST(DebugCheckDeathTest, NanPropagationMidGraphBlamesFirstProducer) {
  ScopedDebugChecks on(true);
  // A NaN injected into the input of a chain is first *produced* by the op
  // that consumes the poisoned tensor — here AddScalar, not the later Mul.
  Tensor x = Tensor::FromVector({3}, {1.0f, std::nanf(""), 3.0f});
  EXPECT_DEATH(Mul(AddScalar(x, 1.0f), Tensor::Ones({3})),
               "op 'AddScalar' produced non-finite value");
}

TEST(DebugCheckDeathTest, InfInMatMulIsCaught) {
  ScopedDebugChecks on(true);
  Tensor a = Tensor::Full({2, 2}, 3.0e38f);  // overflows float under matmul
  Tensor b = Tensor::Full({2, 2}, 3.0e38f);
  EXPECT_DEATH(MatMul(a, b), "op 'MatMul' produced non-finite value");
}

TEST(DebugCheckDeathTest, BackwardGradientsAreGuarded) {
  ScopedDebugChecks on(true);
  // Forward Sqrt(0) = 0 is finite; backward 0.5/sqrt(0) = inf. The guard
  // must attribute the non-finite gradient to Sqrt's backward.
  Tensor x = Tensor::Zeros({2});
  x.SetRequiresGrad(true);
  Tensor loss = SumAll(Sqrt(x));
  EXPECT_DEATH(loss.Backward(), "Sqrt.backward");
}

TEST(DebugCheckTest, NanPassesWhenTierDisabled) {
  ScopedDebugChecks off(false);
  Tensor x = Tensor::Full({4}, -1.0f);
  Tensor y = Log(x);  // NaN output, but the tier is off: no abort.
  EXPECT_TRUE(std::isnan(y.data()[0]));
}

// --- In-place aliasing guard ------------------------------------------------

TEST(DebugCheckDeathTest, AddInPlaceRejectsAliasedSource) {
  ScopedDebugChecks on(true);
  Tensor a = Tensor::Ones({8});
  Tensor alias = a.Detach();  // shares the buffer
  EXPECT_DEATH(AddInPlace(a, alias),
               "in-place op 'AddInPlace' source aliases its destination");
}

TEST(DebugCheckTest, AddInPlaceAcceptsDisjointBuffers) {
  ScopedDebugChecks on(true);
  Tensor a = Tensor::Ones({8});
  Tensor b = Tensor::Ones({8});
  AddInPlace(a, b);
  EXPECT_FLOAT_EQ(a.data()[0], 2.0f);
}

// --- Autograd graph auditor -------------------------------------------------

TEST(DebugCheckDeathTest, DoubleBackwardOnFreedGraphIsDetected) {
  ScopedDebugChecks on(true);
  Tensor a = MakeParam({3}, 7);
  Tensor loss = SumAll(Mul(a, a));
  loss.Backward();
  EXPECT_DEATH(loss.Backward(), "double backward through node");
}

TEST(DebugCheckTest, FreshGraphsMayBackwardRepeatedly) {
  ScopedDebugChecks on(true);
  // Rebuilding the graph per step (the trainer's pattern) must stay legal:
  // each Backward consumes a distinct tape.
  Tensor a = MakeParam({3}, 8);
  SumAll(Mul(a, a)).Backward();
  SumAll(Mul(a, a)).Backward();
  EXPECT_TRUE(a.Grad().defined());
}

TEST(DebugCheckTest, TrainingStepShapedGraphPassesAudit) {
  ScopedDebugChecks on(true);
  // A representative mini forward/backward (matmul + softmax + losses)
  // runs clean under the full invariant tier.
  Tensor w = MakeParam({4, 4}, 9);
  Tensor x = Tensor::Ones({2, 4});
  Tensor target = Tensor::Zeros({2, 4});
  Tensor pred = SoftmaxLastDim(MatMul(x, w));
  Tensor loss = MseLoss(pred, target);
  loss.Backward();
  ASSERT_TRUE(w.Grad().defined());
  for (int64_t i = 0; i < w.Grad().numel(); ++i) {
    EXPECT_TRUE(std::isfinite(w.Grad().data()[i]));
  }
}

}  // namespace
}  // namespace focus
