// Unit tests for the tensor core: factories, shape machinery, kernels,
// memory accounting and FLOP counting.
#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/flops.h"
#include "tensor/memory.h"
#include "tensor/ops.h"
#include "tests/test_util.h"

namespace focus {
namespace {

using testing::ExpectTensorNear;

TEST(TensorTest, FactoriesAndIntrospection) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.dim(), 2);
  EXPECT_EQ(z.numel(), 6);
  EXPECT_EQ(z.size(0), 2);
  EXPECT_EQ(z.size(-1), 3);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(z.data()[i], 0.0f);

  Tensor f = Tensor::Full({4}, 2.5f);
  EXPECT_EQ(f.At({2}), 2.5f);

  Tensor v = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(v.At({1, 0}), 3.0f);
  v.Set({1, 0}, 9.0f);
  EXPECT_EQ(v.At({1, 0}), 9.0f);

  Tensor a = Tensor::Arange(5);
  EXPECT_EQ(a.At({4}), 4.0f);

  EXPECT_EQ(Tensor::Scalar(7.0f).Item(), 7.0f);
}

TEST(TensorTest, RandomFactoriesAreDeterministicPerSeed) {
  Rng rng1(42), rng2(42), rng3(43);
  Tensor a = Tensor::Randn({32}, rng1);
  Tensor b = Tensor::Randn({32}, rng2);
  Tensor c = Tensor::Randn({32}, rng3);
  ExpectTensorNear(a, b, 0.0);
  bool any_diff = false;
  for (int64_t i = 0; i < 32; ++i) {
    any_diff |= a.data()[i] != c.data()[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(TensorTest, RandnMomentsRoughlyStandard) {
  Rng rng(7);
  Tensor x = Tensor::Randn({10000}, rng);
  double mean = 0, var = 0;
  for (int64_t i = 0; i < x.numel(); ++i) mean += x.data()[i];
  mean /= x.numel();
  for (int64_t i = 0; i < x.numel(); ++i) {
    var += (x.data()[i] - mean) * (x.data()[i] - mean);
  }
  var /= x.numel();
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = a.Clone();
  b.data()[0] = 5;
  EXPECT_EQ(a.At({0}), 1.0f);
}

TEST(TensorTest, DetachSharesBuffer) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor d = a.Detach();
  d.data()[0] = 5;
  EXPECT_EQ(a.At({0}), 5.0f);
  EXPECT_FALSE(d.requires_grad());
}

TEST(TensorTest, AddSubMulDivSameShape) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {4, 3, 2, 1});
  ExpectTensorNear(a + b, Tensor::Full({2, 2}, 5.0f));
  ExpectTensorNear(a - b, Tensor::FromVector({2, 2}, {-3, -1, 1, 3}));
  ExpectTensorNear(a * b, Tensor::FromVector({2, 2}, {4, 6, 6, 4}));
  ExpectTensorNear(a / b, Tensor::FromVector({2, 2}, {0.25f, 2.f / 3, 1.5f, 4}),
                   1e-6);
}

TEST(TensorTest, BroadcastRules) {
  EXPECT_EQ(BroadcastShapes({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShapes({4, 1, 3}, {2, 1}), (Shape{4, 2, 3}));
  EXPECT_EQ(BroadcastShapes({1}, {5}), (Shape{5}));
}

TEST(TensorTest, BroadcastAdd) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row = Tensor::FromVector({3}, {10, 20, 30});
  ExpectTensorNear(a + row,
                   Tensor::FromVector({2, 3}, {11, 22, 33, 14, 25, 36}));
  Tensor col = Tensor::FromVector({2, 1}, {100, 200});
  ExpectTensorNear(a + col,
                   Tensor::FromVector({2, 3}, {101, 102, 103, 204, 205, 206}));
}

TEST(TensorTest, BroadcastTo) {
  Tensor x = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor y = BroadcastTo(x, {2, 3});
  ExpectTensorNear(y, Tensor::FromVector({2, 3}, {1, 2, 3, 1, 2, 3}));
}

TEST(TensorTest, ScalarOps) {
  Tensor x = Tensor::FromVector({3}, {1, 2, 3});
  ExpectTensorNear(AddScalar(x, 1.0f), Tensor::FromVector({3}, {2, 3, 4}));
  ExpectTensorNear(MulScalar(x, -2.0f), Tensor::FromVector({3}, {-2, -4, -6}));
  ExpectTensorNear(PowScalar(x, 2.0f), Tensor::FromVector({3}, {1, 4, 9}),
                   1e-5);
}

TEST(TensorTest, UnaryOps) {
  Tensor x = Tensor::FromVector({4}, {-1.0f, 0.0f, 0.5f, 2.0f});
  ExpectTensorNear(Neg(x), Tensor::FromVector({4}, {1, 0, -0.5f, -2}));
  ExpectTensorNear(Relu(x), Tensor::FromVector({4}, {0, 0, 0.5f, 2}));
  ExpectTensorNear(Abs(x), Tensor::FromVector({4}, {1, 0, 0.5f, 2}));
  EXPECT_NEAR(Exp(x).At({3}), std::exp(2.0f), 1e-5);
  EXPECT_NEAR(Sigmoid(x).At({0}), 1.0f / (1.0f + std::exp(1.0f)), 1e-6);
  EXPECT_NEAR(Tanh(x).At({3}), std::tanh(2.0f), 1e-6);
  EXPECT_NEAR(Sqrt(Tensor::FromVector({1}, {9})).Item(), 3.0f, 1e-6);
  EXPECT_NEAR(Log(Tensor::FromVector({1}, {std::exp(1.0f)})).Item(), 1.0f,
              1e-5);
  // GELU reference values (tanh approximation).
  EXPECT_NEAR(Gelu(Tensor::Scalar(0.0f)).Item(), 0.0f, 1e-6);
  EXPECT_NEAR(Gelu(Tensor::Scalar(1.0f)).Item(), 0.84119f, 1e-4);
}

TEST(TensorTest, MatMul2D) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  ExpectTensorNear(c, Tensor::FromVector({2, 2}, {58, 64, 139, 154}));
}

TEST(TensorTest, MatMulBatched) {
  Tensor a = Tensor::FromVector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2, 1}, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  ExpectTensorNear(c, Tensor::FromVector({2, 1, 1}, {17, 53}));
}

TEST(TensorTest, MatMulBroadcastRhs) {
  Tensor a = Tensor::FromVector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 1}, {5, 6});
  Tensor c = MatMul(a, b);
  ExpectTensorNear(c, Tensor::FromVector({2, 1, 1}, {17, 39}));
}

TEST(TensorTest, MatMulAgainstNaiveReference) {
  Rng rng(11);
  const int64_t m = 9, k = 13, n = 7;
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  Tensor c = MatMul(a, b);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a.At({i, kk}) * b.At({kk, j});
      }
      EXPECT_NEAR(c.At({i, j}), acc, 1e-4);
    }
  }
}

TEST(TensorTest, Reductions) {
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_NEAR(SumAll(x).Item(), 21.0f, 1e-6);
  EXPECT_NEAR(MeanAll(x).Item(), 3.5f, 1e-6);
  ExpectTensorNear(Sum(x, 0, false), Tensor::FromVector({3}, {5, 7, 9}));
  ExpectTensorNear(Sum(x, 1, true), Tensor::FromVector({2, 1}, {6, 15}));
  ExpectTensorNear(Mean(x, 1, false), Tensor::FromVector({2}, {2, 5}));
  ExpectTensorNear(Sum(x, -1, false), Tensor::FromVector({2}, {6, 15}));
}

TEST(TensorTest, SoftmaxRowsSumToOneAndOrderPreserved) {
  Rng rng(3);
  Tensor x = Tensor::Randn({4, 7}, rng, 3.0f);
  Tensor y = SoftmaxLastDim(x);
  for (int64_t r = 0; r < 4; ++r) {
    float sum = 0;
    for (int64_t c = 0; c < 7; ++c) {
      const float v = y.At({r, c});
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  // Monotone: larger logit -> larger probability within a row.
  EXPECT_GT(SoftmaxLastDim(Tensor::FromVector({1, 2}, {1, 2})).At({0, 1}),
            SoftmaxLastDim(Tensor::FromVector({1, 2}, {1, 2})).At({0, 0}));
}

TEST(TensorTest, SoftmaxNumericalStabilityWithLargeLogits) {
  Tensor x = Tensor::FromVector({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor y = SoftmaxLastDim(x);
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(y.At({0, c}), 1.0f / 3.0f, 1e-5);
  }
}

TEST(TensorTest, LayerNormNormalizesLastDim) {
  Rng rng(5);
  Tensor x = Tensor::Randn({3, 8}, rng, 4.0f);
  Tensor gamma = Tensor::Ones({8});
  Tensor beta = Tensor::Zeros({8});
  Tensor y = LayerNormLastDim(x, gamma, beta);
  for (int64_t r = 0; r < 3; ++r) {
    double mean = 0, var = 0;
    for (int64_t c = 0; c < 8; ++c) mean += y.At({r, c});
    mean /= 8;
    for (int64_t c = 0; c < 8; ++c) {
      var += (y.At({r, c}) - mean) * (y.At({r, c}) - mean);
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(TensorTest, ReshapeAliasesAndInfersDim) {
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor y = Reshape(x, {3, -1});
  EXPECT_EQ(y.shape(), (Shape{3, 2}));
  y.data()[0] = 42;
  EXPECT_EQ(x.At({0, 0}), 42.0f);  // aliasing
}

TEST(TensorTest, TransposeAndPermute) {
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(x, 0, 1);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.At({2, 1}), 6.0f);
  EXPECT_EQ(t.At({0, 1}), 4.0f);

  Tensor p = Tensor::Arange(24).Reshape({2, 3, 4});
  Tensor q = Permute(p, {2, 0, 1});
  EXPECT_EQ(q.shape(), (Shape{4, 2, 3}));
  EXPECT_EQ(q.At({1, 1, 2}), p.At({1, 2, 1}));
}

TEST(TensorTest, SliceAndCat) {
  Tensor x = Tensor::Arange(12).Reshape({3, 4});
  Tensor s = Slice(x, 1, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{3, 2}));
  EXPECT_EQ(s.At({2, 0}), 9.0f);

  Tensor neg = Slice(x, 0, -2, -1);
  EXPECT_EQ(neg.shape(), (Shape{1, 4}));
  EXPECT_EQ(neg.At({0, 0}), 4.0f);

  Tensor c = Cat({x, x}, 0);
  EXPECT_EQ(c.shape(), (Shape{6, 4}));
  EXPECT_EQ(c.At({4, 2}), x.At({1, 2}));
  Tensor c1 = Cat({x, x}, 1);
  EXPECT_EQ(c1.shape(), (Shape{3, 8}));
  EXPECT_EQ(c1.At({1, 6}), x.At({1, 2}));
}

TEST(TensorTest, IndexSelect) {
  Tensor x = Tensor::Arange(12).Reshape({4, 3});
  Tensor y = IndexSelect(x, 0, {2, 0, 2});
  EXPECT_EQ(y.shape(), (Shape{3, 3}));
  EXPECT_EQ(y.At({0, 1}), 7.0f);
  EXPECT_EQ(y.At({1, 1}), 1.0f);
  EXPECT_EQ(y.At({2, 2}), 8.0f);

  Tensor z = IndexSelect(x, 1, {1});
  EXPECT_EQ(z.shape(), (Shape{4, 1}));
  EXPECT_EQ(z.At({3, 0}), 10.0f);
}

TEST(TensorTest, UnsqueezeSqueeze) {
  Tensor x = Tensor::Ones({2, 3});
  EXPECT_EQ(x.Unsqueeze(0).shape(), (Shape{1, 2, 3}));
  EXPECT_EQ(x.Unsqueeze(-1).shape(), (Shape{2, 3, 1}));
  EXPECT_EQ(x.Unsqueeze(1).shape(), (Shape{2, 1, 3}));
  EXPECT_EQ(x.Unsqueeze(0).Squeeze(0).shape(), (Shape{2, 3}));
}

TEST(TensorTest, Conv1dKnownValues) {
  // x = [1,2,3,4], w = [1,0,-1]: valid conv -> [1-3, 2-4] = [-2,-2]
  Tensor x = Tensor::FromVector({1, 1, 4}, {1, 2, 3, 4});
  Tensor w = Tensor::FromVector({1, 1, 3}, {1, 0, -1});
  Tensor y = Conv1d(x, w, Tensor());
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2}));
  EXPECT_NEAR(y.At({0, 0, 0}), -2.0f, 1e-6);
  EXPECT_NEAR(y.At({0, 0, 1}), -2.0f, 1e-6);

  Tensor yp = Conv1d(x, w, Tensor(), 1, 1);
  EXPECT_EQ(yp.shape(), (Shape{1, 1, 4}));
  EXPECT_NEAR(yp.At({0, 0, 0}), -2.0f, 1e-6);  // 0*1 + 1*0 + 2*(-1)

  Tensor b = Tensor::FromVector({1}, {10});
  Tensor yb = Conv1d(x, w, b);
  EXPECT_NEAR(yb.At({0, 0, 0}), 8.0f, 1e-6);
}

TEST(TensorTest, Conv1dStrideDilation) {
  Tensor x = Tensor::Arange(8).Reshape({1, 1, 8});
  Tensor w = Tensor::FromVector({1, 1, 2}, {1, 1});
  Tensor y = Conv1d(x, w, Tensor(), /*stride=*/2);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 4}));
  EXPECT_NEAR(y.At({0, 0, 1}), 5.0f, 1e-6);  // x[2]+x[3]

  Tensor yd = Conv1d(x, w, Tensor(), 1, 0, /*dilation=*/3);
  EXPECT_EQ(yd.shape(), (Shape{1, 1, 5}));
  EXPECT_NEAR(yd.At({0, 0, 0}), 3.0f, 1e-6);  // x[0]+x[3]
}

TEST(TensorTest, Conv2dKnownValues) {
  Tensor x = Tensor::Arange(9).Reshape({1, 1, 3, 3});
  Tensor w = Tensor::Ones({1, 1, 2, 2});
  Tensor y = Conv2d(x, w, Tensor());
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_NEAR(y.At({0, 0, 0, 0}), 0 + 1 + 3 + 4, 1e-6);
  EXPECT_NEAR(y.At({0, 0, 1, 1}), 4 + 5 + 7 + 8, 1e-6);

  Tensor yp = Conv2d(x, w, Tensor(), 1, 1);
  EXPECT_EQ(yp.shape(), (Shape{1, 1, 4, 4}));
  EXPECT_NEAR(yp.At({0, 0, 0, 0}), 0.0f, 1e-6);
}

TEST(TensorTest, Losses) {
  Tensor pred = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor target = Tensor::FromVector({4}, {1, 1, 1, 1});
  EXPECT_NEAR(MseLoss(pred, target).Item(), (0 + 1 + 4 + 9) / 4.0f, 1e-6);
  EXPECT_NEAR(L1Loss(pred, target).Item(), (0 + 1 + 2 + 3) / 4.0f, 1e-6);
}

TEST(TensorTest, MemoryStatsTrackPeak) {
  MemoryStats::ResetPeak();
  const int64_t before = MemoryStats::CurrentBytes();
  {
    Tensor big = Tensor::Zeros({1024});
    EXPECT_GE(MemoryStats::CurrentBytes(), before + 4096);
    EXPECT_GE(MemoryStats::PeakBytes(), before + 4096);
  }
  EXPECT_EQ(MemoryStats::CurrentBytes(), before);
  EXPECT_GE(MemoryStats::PeakBytes(), before + 4096);
}

TEST(TensorTest, FlopCounterCountsMatMul) {
  FlopCounter::Reset();
  Tensor a = Tensor::Ones({8, 16});
  Tensor b = Tensor::Ones({16, 4});
  FlopScope scope;
  MatMul(a, b);
  EXPECT_EQ(scope.Elapsed(), 2 * 8 * 16 * 4);
}

TEST(TensorTest, UndefinedTensorBehaves) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_FALSE(t.requires_grad());
}

}  // namespace
}  // namespace focus
