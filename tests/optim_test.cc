// Optimizer behaviour: convergence on convex problems, AdamW decoupled
// decay, gradient clipping.
#include "optim/optimizer.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "tensor/ops.h"

namespace focus {
namespace {

// Minimizes ||x - target||^2 with the given optimizer; returns final loss.
template <typename Opt, typename... Args>
float MinimizeQuadratic(int steps, float lr, Args... args) {
  Rng rng(77);
  Tensor x = Tensor::Randn({8}, rng, 3.0f);
  x.SetRequiresGrad(true);
  Tensor target = Tensor::Arange(8);
  Opt opt({x}, lr, args...);
  float loss_val = 0.0f;
  for (int i = 0; i < steps; ++i) {
    opt.ZeroGrad();
    Tensor loss = MseLoss(x, target);
    loss.Backward();
    opt.Step();
    loss_val = loss.Item();
  }
  return loss_val;
}

TEST(OptimTest, SgdConvergesOnQuadratic) {
  // MSE over 8 elements contracts by (1 - lr/4) per step.
  EXPECT_LT(MinimizeQuadratic<optim::Sgd>(200, 0.5f), 1e-6f);
}

TEST(OptimTest, SgdMomentumConvergesFaster) {
  const float plain = MinimizeQuadratic<optim::Sgd>(50, 0.05f);
  const float momentum = MinimizeQuadratic<optim::Sgd>(50, 0.05f, 0.9f);
  EXPECT_LT(momentum, plain);
}

TEST(OptimTest, AdamConvergesOnQuadratic) {
  // Adam's per-coordinate step is bounded by ~lr, and targets are up to 7
  // units away, so give it enough step budget.
  EXPECT_LT(MinimizeQuadratic<optim::Adam>(600, 0.2f), 1e-3f);
}

TEST(OptimTest, AdamWConvergesOnQuadratic) {
  // Small decay still converges near the target.
  EXPECT_LT(MinimizeQuadratic<optim::AdamW>(600, 0.2f, 1e-4f), 1e-2f);
}

TEST(OptimTest, AdamWDecayIsDecoupledFromGradientScale) {
  // With zero gradient, AdamW should still shrink weights, and the shrink
  // factor per step must be exactly (1 - lr * wd) independent of any
  // gradient history — the decoupling property.
  Tensor w = Tensor::Full({4}, 2.0f);
  w.SetRequiresGrad(true);
  optim::AdamW opt({w}, /*lr=*/0.1f, /*weight_decay=*/0.5f);
  // Manually install a zero gradient so Step() does not skip the param.
  SumAll(MulScalar(w, 0.0f)).Backward();
  opt.Step();
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.data()[i], 2.0f * (1.0f - 0.1f * 0.5f), 1e-5f);
  }
}

TEST(OptimTest, StepSkipsParamsWithoutGrad) {
  Tensor a = Tensor::Full({2}, 1.0f);
  a.SetRequiresGrad(true);
  Tensor b = Tensor::Full({2}, 1.0f);
  b.SetRequiresGrad(true);
  optim::Sgd opt({a, b}, 0.5f);
  SumAll(a).Backward();  // only a gets a gradient
  opt.Step();
  EXPECT_NEAR(a.data()[0], 0.5f, 1e-6f);
  EXPECT_NEAR(b.data()[0], 1.0f, 1e-6f);
}

TEST(OptimTest, ClipGradNormScalesDown) {
  Tensor a = Tensor::Full({4}, 1.0f);
  a.SetRequiresGrad(true);
  SumAll(MulScalar(a, 3.0f)).Backward();  // grad = 3 everywhere, norm = 6
  const float pre = optim::ClipGradNorm({a}, 1.0f);
  EXPECT_NEAR(pre, 6.0f, 1e-5f);
  double sq = 0;
  for (int64_t i = 0; i < 4; ++i) {
    sq += a.Grad().data()[i] * a.Grad().data()[i];
  }
  EXPECT_NEAR(std::sqrt(sq), 1.0, 1e-5);
}

TEST(OptimTest, ClipGradNormNoOpWhenBelowThreshold) {
  Tensor a = Tensor::Full({4}, 1.0f);
  a.SetRequiresGrad(true);
  SumAll(a).Backward();  // grad = 1 everywhere, norm = 2
  optim::ClipGradNorm({a}, 10.0f);
  EXPECT_NEAR(a.Grad().data()[0], 1.0f, 1e-6f);
}

TEST(OptimTest, TrainsLinearRegressionToKnownWeights) {
  // y = 2x0 - 3x1 + 1; a Linear layer must recover the mapping.
  Rng rng(123);
  nn::Linear lin(2, 1, rng);
  optim::AdamW opt(lin.Parameters(), 0.05f, /*weight_decay=*/0.0f);
  Rng data_rng(321);
  for (int step = 0; step < 500; ++step) {
    Tensor x = Tensor::Randn({16, 2}, data_rng);
    Tensor y = Tensor::Empty({16, 1});
    for (int64_t i = 0; i < 16; ++i) {
      y.data()[i] = 2.0f * x.At({i, 0}) - 3.0f * x.At({i, 1}) + 1.0f;
    }
    opt.ZeroGrad();
    MseLoss(lin.Forward(x), y).Backward();
    opt.Step();
  }
  const Tensor& w = lin.weight();
  EXPECT_NEAR(w.At({0, 0}), 2.0f, 0.05f);
  EXPECT_NEAR(w.At({1, 0}), -3.0f, 0.05f);
}

}  // namespace
}  // namespace focus
