// Tests for the profiling subsystem (src/obs/prof) and the unified bench
// schema: PerfCounters degradation, span export with zeroed counter
// fields, RunReport top-N ordering and JSON shape, and the bench-report
// round trip.
//
// Every span-producing test runs with ForceUnavailableForTest(true) so
// the per-thread counter group constructs degraded regardless of host
// capabilities — the degraded path is the contract worth pinning (CI
// containers rarely grant perf_event_open), and a capable host would
// otherwise make these tests nondeterministic.
#include "obs/prof/perf_counters.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/bench_report.h"
#include "obs/prof/run_report.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace focus {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Structural check: braces/brackets outside strings balance and the
// document is a single object. Catches broken escaping without a parser.
bool JsonBalanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false, escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      stack.push_back(c);
    } else if (c == '}' || c == ']') {
      if (stack.empty()) return false;
      const char open = stack.back();
      stack.pop_back();
      if ((c == '}') != (open == '{')) return false;
    }
  }
  return stack.empty() && !in_string;
}

obs::SpanEvent MakeEvent(const std::string& name, int64_t wall_us,
                         int64_t flops, int64_t alloc_bytes,
                         int32_t depth = 0) {
  obs::SpanEvent ev;
  ev.name = name;
  ev.depth = depth;
  ev.wall_us = wall_us;
  ev.flops = flops;
  ev.self_flops = flops;
  ev.alloc_bytes = alloc_bytes;
  return ev;
}

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::prof::ForceUnavailableForTest(true);
    obs::Tracer::Get().Clear();
  }
  void TearDown() override {
    auto& tracer = obs::Tracer::Get();
    tracer.SetOutput("", obs::TraceFormat::kJsonl);
    tracer.Disable();
    tracer.Clear();
    obs::prof::SetCountersRequestedForTest(false);
    obs::prof::ForceUnavailableForTest(false);
  }
};

TEST_F(ProfTest, PerfCountersDegradeGracefully) {
  // With the syscall forced unavailable, construction must still succeed
  // and Read() must return all-zero samples — the no-PMU contract.
  obs::prof::PerfCounters counters;
  EXPECT_FALSE(counters.valid());
  const obs::prof::PerfSample sample = counters.Read();
  EXPECT_EQ(sample.cycles, 0);
  EXPECT_EQ(sample.instructions, 0);
  EXPECT_EQ(sample.cache_misses, 0);
  EXPECT_EQ(sample.branch_misses, 0);
  EXPECT_FALSE(obs::prof::Available());
}

TEST_F(ProfTest, DegradedSpansExportZeroedCounterFields) {
  // FOCUS_PERF_COUNTERS=1 on a host without perf_event_open: the run must
  // complete normally and every span must export the counter fields as
  // zeros (not omit them, not crash).
  obs::prof::SetCountersRequestedForTest(true);
  auto& tracer = obs::Tracer::Get();
  tracer.Enable();
  {
    obs::TraceSpan span("prof_test/degraded");
    Tensor a = Tensor::Ones({64, 64});
    Tensor b = MatMul(a, a);
    (void)b;
  }
  const auto events = tracer.Snapshot();
  ASSERT_FALSE(events.empty());
  bool found = false;
  for (const auto& ev : events) {
    if (ev.name != "prof_test/degraded") continue;
    found = true;
    EXPECT_EQ(ev.cycles, 0);
    EXPECT_EQ(ev.instructions, 0);
    EXPECT_EQ(ev.cache_misses, 0);
    EXPECT_EQ(ev.branch_misses, 0);
    EXPECT_GT(ev.flops, 0);  // the span itself still attributes FLOPs
  }
  EXPECT_TRUE(found);

  const std::string path = "prof_test_degraded.jsonl";
  tracer.SetOutput(path, obs::TraceFormat::kJsonl);
  ASSERT_TRUE(tracer.Flush().ok());
  tracer.SetOutput("", obs::TraceFormat::kJsonl);
  const std::string text = ReadFile(path);
  std::remove(path.c_str());
  // Counter fields are present (requested) and zero (degraded); the
  // always-on roofline fields are present too.
  EXPECT_NE(text.find("\"cycles\":0"), std::string::npos);
  EXPECT_NE(text.find("\"instructions\":0"), std::string::npos);
  EXPECT_NE(text.find("\"ipc\":0"), std::string::npos);
  EXPECT_NE(text.find("\"gflops\":"), std::string::npos);
  EXPECT_NE(text.find("\"arith_intensity\":"), std::string::npos);
}

TEST_F(ProfTest, DerivedMetricsZeroSafe) {
  obs::SpanEvent empty;
  EXPECT_DOUBLE_EQ(obs::prof::AchievedGflops(empty), 0.0);
  EXPECT_DOUBLE_EQ(obs::prof::ArithmeticIntensity(empty), 0.0);
  EXPECT_DOUBLE_EQ(obs::prof::Ipc(empty), 0.0);

  // 2e9 FLOPs in 1 second = 2 GFLOP/s; 2e9 FLOPs over 1e9 bytes = 2 F/B.
  obs::SpanEvent ev = MakeEvent("x", 1000000, 2000000000, 1000000000);
  EXPECT_DOUBLE_EQ(obs::prof::AchievedGflops(ev), 2.0);
  EXPECT_DOUBLE_EQ(obs::prof::ArithmeticIntensity(ev), 2.0);
  ev.cycles = 1000;
  ev.instructions = 2500;
  EXPECT_DOUBLE_EQ(obs::prof::Ipc(ev), 2.5);
}

TEST_F(ProfTest, RunReportTopNOrdering) {
  // Three axes rank independently: slow has the wall-clock, hot the
  // FLOPs, fat the bytes. top_n=2 must keep exactly the two largest per
  // axis, descending.
  std::vector<obs::SpanEvent> events;
  events.push_back(MakeEvent("slow", 9000, 10, 10));
  events.push_back(MakeEvent("hot", 100, 5000000, 20));
  events.push_back(MakeEvent("fat", 200, 20, 4000000));
  events.push_back(MakeEvent("mid", 500, 1000, 1000));

  const obs::prof::RunReport report =
      obs::prof::BuildRunReport(events, /*top_n=*/2);
  ASSERT_EQ(report.by_wall.size(), 2u);
  EXPECT_EQ(report.by_wall[0].name, "slow");
  EXPECT_EQ(report.by_wall[1].name, "mid");
  ASSERT_EQ(report.by_flops.size(), 2u);
  EXPECT_EQ(report.by_flops[0].name, "hot");
  EXPECT_EQ(report.by_flops[1].name, "mid");
  ASSERT_EQ(report.by_bytes.size(), 2u);
  EXPECT_EQ(report.by_bytes[0].name, "fat");
  EXPECT_EQ(report.by_bytes[1].name, "mid");

  // Totals sum top-level events only.
  EXPECT_EQ(report.total_wall_us, 9000 + 100 + 200 + 500);
  EXPECT_EQ(report.total_flops, 10 + 5000000 + 20 + 1000);
  EXPECT_EQ(report.total_alloc_bytes, 10 + 20 + 4000000 + 1000);
}

TEST_F(ProfTest, RunReportAggregatesRepeatsAndSkipsNestedTotals) {
  std::vector<obs::SpanEvent> events;
  events.push_back(MakeEvent("step", 100, 1000, 64));
  events.push_back(MakeEvent("step", 300, 3000, 64));
  // Nested event: aggregated into its row but excluded from run totals
  // (its parent's inclusive numbers already cover it).
  events.push_back(MakeEvent("inner", 50, 500, 32, /*depth=*/1));

  const obs::prof::RunReport report = obs::prof::BuildRunReport(events, 5);
  ASSERT_FALSE(report.by_wall.empty());
  EXPECT_EQ(report.by_wall[0].name, "step");
  EXPECT_EQ(report.by_wall[0].count, 2);
  EXPECT_EQ(report.by_wall[0].wall_us, 400);
  EXPECT_EQ(report.total_wall_us, 400);  // inner (depth 1) not re-counted
  EXPECT_EQ(report.total_flops, 4000);
  EXPECT_EQ(report.total_alloc_bytes, 128);
}

TEST_F(ProfTest, RunReportJsonAndAsciiRender) {
  std::vector<obs::SpanEvent> events;
  events.push_back(MakeEvent("train_step", 2000, 4000000, 8192));
  const obs::prof::RunReport report = obs::prof::BuildRunReport(events, 5);

  const std::string json = report.ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"focus_run_report\":1"), std::string::npos);
  EXPECT_NE(json.find("train_step"), std::string::npos);
  EXPECT_NE(json.find("\"by_wall\""), std::string::npos);
  EXPECT_NE(json.find("\"by_flops\""), std::string::npos);
  EXPECT_NE(json.find("\"by_bytes\""), std::string::npos);

  const std::string ascii = report.ToAscii();
  EXPECT_NE(ascii.find("train_step"), std::string::npos);
  EXPECT_NE(ascii.find("GFLOP/s"), std::string::npos);
}

TEST_F(ProfTest, BenchReportRoundTrip) {
  obs::BenchReport report = obs::MakeBenchReport(/*threads=*/4);
  // MakeBenchReport fills live provenance; pin what must be non-empty.
  EXPECT_FALSE(report.date.empty());
  EXPECT_FALSE(report.simd_backend.empty());
  EXPECT_GT(report.num_cpus, 0);

  report.note = "round trip \"quoted\" note";
  obs::BenchEntry entry;
  entry.name = "BM_MatMul/256";
  entry.ns_per_op = 1234.5625;  // exactly representable
  entry.gflops = 27.25;
  entry.items_per_second = 1e9;
  entry.threads = 4.0;
  entry.label = "avx2";
  report.entries.push_back(entry);
  obs::BenchEntry minimal;
  minimal.name = "BM_SoftmaxLastDim/128";
  minimal.ns_per_op = 50.0;
  report.entries.push_back(minimal);

  const std::string json = report.ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"focus_bench_schema\":1"), std::string::npos);

  obs::BenchReport parsed;
  ASSERT_TRUE(obs::ParseBenchReport(json, &parsed)) << json;
  EXPECT_EQ(parsed.date, report.date);
  EXPECT_EQ(parsed.note, report.note);
  EXPECT_EQ(parsed.cpu_model, report.cpu_model);
  EXPECT_EQ(parsed.num_cpus, report.num_cpus);
  EXPECT_EQ(parsed.git_sha, report.git_sha);
  EXPECT_EQ(parsed.simd_backend, report.simd_backend);
  EXPECT_EQ(parsed.build_type, report.build_type);
  EXPECT_EQ(parsed.threads, report.threads);
  ASSERT_EQ(parsed.entries.size(), report.entries.size());
  for (size_t i = 0; i < parsed.entries.size(); ++i) {
    EXPECT_EQ(parsed.entries[i].name, report.entries[i].name);
    EXPECT_DOUBLE_EQ(parsed.entries[i].ns_per_op,
                     report.entries[i].ns_per_op);
    EXPECT_DOUBLE_EQ(parsed.entries[i].gflops, report.entries[i].gflops);
    EXPECT_DOUBLE_EQ(parsed.entries[i].items_per_second,
                     report.entries[i].items_per_second);
    EXPECT_DOUBLE_EQ(parsed.entries[i].threads, report.entries[i].threads);
    EXPECT_EQ(parsed.entries[i].label, report.entries[i].label);
  }
}

TEST_F(ProfTest, ParseBenchReportRejectsWrongSchema) {
  obs::BenchReport parsed;
  EXPECT_FALSE(obs::ParseBenchReport("{}", &parsed));
  EXPECT_FALSE(obs::ParseBenchReport("not json at all", &parsed));
  EXPECT_FALSE(obs::ParseBenchReport(
      "{\"focus_bench_schema\":2,\"benchmarks\":[]}", &parsed));
}

TEST_F(ProfTest, WriteBenchReportCreatesParsableFile) {
  obs::BenchReport report = obs::MakeBenchReport(1);
  obs::BenchEntry entry;
  entry.name = "BM_Probe";
  entry.ns_per_op = 42.0;
  report.entries.push_back(entry);
  const std::string path = "prof_test_bench.json";
  ASSERT_TRUE(obs::WriteBenchReport(report, path).ok());
  const std::string text = ReadFile(path);
  std::remove(path.c_str());
  obs::BenchReport parsed;
  EXPECT_TRUE(obs::ParseBenchReport(text, &parsed));
  ASSERT_EQ(parsed.entries.size(), 1u);
  EXPECT_EQ(parsed.entries[0].name, "BM_Probe");
}

}  // namespace
}  // namespace focus
