// Tests for module checkpointing (state dict + in-memory snapshots) and
// learning-rate schedules.
#include <cstdio>

#include <gtest/gtest.h>

#include "core/focus_model.h"
#include "nn/attention.h"
#include "nn/serialize.h"
#include "optim/scheduler.h"
#include "tests/test_util.h"

namespace focus {
namespace {

TEST(SerializeTest, StateDictRoundTripRestoresForward) {
  Rng rng(1);
  nn::TransformerEncoderLayer layer(8, 2, 16, rng);
  Rng data_rng(2);
  Tensor x = Tensor::Randn({1, 4, 8}, data_rng);
  layer.SetTraining(false);
  Tensor before = layer.Forward(x);

  const std::string path = ::testing::TempDir() + "/layer.std";
  ASSERT_TRUE(nn::SaveStateDict(layer, path).ok());

  // Scramble the weights, then load back.
  for (Tensor p : layer.Parameters()) {
    for (int64_t i = 0; i < p.numel(); ++i) p.data()[i] += 1.0f;
  }
  Tensor scrambled = layer.Forward(x);
  bool changed = false;
  for (int64_t i = 0; i < before.numel(); ++i) {
    changed |= std::fabs(scrambled.data()[i] - before.data()[i]) > 1e-4f;
  }
  ASSERT_TRUE(changed);

  ASSERT_TRUE(nn::LoadStateDict(layer, path).ok());
  testing::ExpectTensorNear(layer.Forward(x), before, 0.0);
}

TEST(SerializeTest, LoadRejectsArchitectureMismatch) {
  Rng rng(3);
  nn::Linear small(4, 2, rng);
  nn::Linear big(8, 2, rng);
  const std::string path = ::testing::TempDir() + "/small.std";
  ASSERT_TRUE(nn::SaveStateDict(small, path).ok());
  Status status = nn::LoadStateDict(big, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
}

TEST(SerializeTest, LoadRejectsCorruptFile) {
  const std::string path = ::testing::TempDir() + "/corrupt.std";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("GARBAGE!", 1, 8, f);
  std::fclose(f);
  Rng rng(4);
  nn::Linear lin(2, 2, rng);
  Status status = nn::LoadStateDict(lin, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kCorruption);

  EXPECT_EQ(nn::LoadStateDict(lin, "/no/such/file.std").code(),
            Status::Code::kNotFound);
}

TEST(SerializeTest, FocusModelCheckpointRoundTrip) {
  Rng rng(5);
  core::FocusConfig cfg;
  cfg.lookback = 32;
  cfg.horizon = 8;
  cfg.num_entities = 2;
  cfg.patch_len = 8;
  cfg.d_model = 16;
  cfg.readout_queries = 2;
  cfg.seed = 6;
  Tensor protos = Tensor::Randn({4, 8}, rng);
  core::FocusModel a(cfg, protos);
  core::FocusModel b(cfg, protos);  // same arch, same init seed

  // Diverge b, then restore from a's checkpoint.
  for (Tensor p : b.Parameters()) {
    for (int64_t i = 0; i < p.numel(); ++i) p.data()[i] *= 0.5f;
  }
  const std::string path = ::testing::TempDir() + "/focus.std";
  ASSERT_TRUE(nn::SaveStateDict(a, path).ok());
  ASSERT_TRUE(nn::LoadStateDict(b, path).ok());

  Rng data_rng(7);
  Tensor x = Tensor::Randn({1, 2, 32}, data_rng);
  a.SetTraining(false);
  b.SetTraining(false);
  NoGradGuard no_grad;
  testing::ExpectTensorNear(a.Forward(x), b.Forward(x), 0.0);
}

TEST(SerializeTest, SnapshotRestoreRoundTrip) {
  Rng rng(8);
  nn::Linear lin(4, 4, rng);
  auto snapshot = nn::SnapshotParameters(lin);
  Tensor w = lin.Parameters()[0];
  const float original = w.data()[0];
  w.data()[0] = 999.0f;
  nn::RestoreParameters(lin, snapshot);
  EXPECT_EQ(w.data()[0], original);
}

// --- LR schedules -----------------------------------------------------------

TEST(SchedulerTest, ConstantLr) {
  optim::ConstantLr sched(0.1f);
  EXPECT_EQ(sched.LrAt(0), 0.1f);
  EXPECT_EQ(sched.LrAt(1000), 0.1f);
}

TEST(SchedulerTest, CosineDecayEndpoints) {
  optim::CosineDecayLr sched(1.0f, 100, 0.1f);
  EXPECT_NEAR(sched.LrAt(0), 1.0f, 1e-6);
  EXPECT_NEAR(sched.LrAt(50), 0.55f, 1e-3);  // midpoint of [0.1, 1.0]
  EXPECT_NEAR(sched.LrAt(100), 0.1f, 1e-6);
  EXPECT_NEAR(sched.LrAt(500), 0.1f, 1e-6);  // clamped after total_steps
}

TEST(SchedulerTest, CosineDecayIsMonotoneNonIncreasing) {
  optim::CosineDecayLr sched(1.0f, 64);
  float prev = sched.LrAt(0);
  for (int64_t s = 1; s <= 64; ++s) {
    const float cur = sched.LrAt(s);
    EXPECT_LE(cur, prev + 1e-7f);
    prev = cur;
  }
}

TEST(SchedulerTest, StepDecayHalvesOnSchedule) {
  optim::StepDecayLr sched(0.8f, 10, 0.5f);
  EXPECT_NEAR(sched.LrAt(0), 0.8f, 1e-6);
  EXPECT_NEAR(sched.LrAt(9), 0.8f, 1e-6);
  EXPECT_NEAR(sched.LrAt(10), 0.4f, 1e-6);
  EXPECT_NEAR(sched.LrAt(25), 0.2f, 1e-6);
}

TEST(SchedulerTest, WarmupRampsThenDecays) {
  optim::WarmupCosineLr sched(1.0f, 10, 110, 0.0f);
  EXPECT_LT(sched.LrAt(0), 0.2f);          // early warmup
  EXPECT_NEAR(sched.LrAt(9), 1.0f, 1e-5);  // warmup complete
  EXPECT_GT(sched.LrAt(9), sched.LrAt(60));
  EXPECT_NEAR(sched.LrAt(110), 0.0f, 1e-5);
}

TEST(SchedulerTest, ApplySetsOptimizerLr) {
  Tensor p = Tensor::Ones({2});
  p.SetRequiresGrad(true);
  optim::Sgd opt({p}, 1.0f);
  optim::StepDecayLr sched(1.0f, 5, 0.1f);
  sched.Apply(opt, 7);
  EXPECT_NEAR(opt.lr(), 0.1f, 1e-6);
}

}  // namespace
}  // namespace focus
