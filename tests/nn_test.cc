// Tests for NN modules: registration, shapes, gradcheck, attention
// invariants, dropout semantics.
#include <cmath>

#include <gtest/gtest.h>

#include "nn/attention.h"
#include "nn/layers.h"
#include "tests/test_util.h"

namespace focus {
namespace {

using nn::Dropout;
using nn::FeedForward;
using nn::LayerNorm;
using nn::Linear;
using nn::MultiheadSelfAttention;
using nn::Sequential;
using nn::TransformerEncoderLayer;
using testing::CheckGradients;

TEST(ModuleTest, ParameterRegistryAndCounts) {
  Rng rng(1);
  Linear lin(8, 4, rng);
  EXPECT_EQ(lin.NumParameters(), 8 * 4 + 4);
  auto named = lin.NamedParameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
  for (const auto& [name, p] : named) EXPECT_TRUE(p.requires_grad());
}

TEST(ModuleTest, NestedModuleNamesAreDotted) {
  Rng rng(2);
  FeedForward ffn(4, 8, rng);
  auto named = ffn.NamedParameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "fc1.weight");
  EXPECT_EQ(named[2].first, "fc2.weight");
  EXPECT_EQ(ffn.NumParameters(), 4 * 8 + 8 + 8 * 4 + 4);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(3);
  Linear lin(3, 2, rng);
  Tensor x = Tensor::Ones({5, 3});
  SumAll(lin.Forward(x)).Backward();
  EXPECT_TRUE(lin.Parameters()[0].Grad().defined());
  lin.ZeroGrad();
  EXPECT_FALSE(lin.Parameters()[0].Grad().defined());
}

TEST(LinearTest, ForwardShapes) {
  Rng rng(4);
  Linear lin(6, 3, rng);
  EXPECT_EQ(lin.Forward(Tensor::Ones({2, 6})).shape(), (Shape{2, 3}));
  EXPECT_EQ(lin.Forward(Tensor::Ones({4, 5, 6})).shape(), (Shape{4, 5, 3}));
  EXPECT_EQ(lin.Forward(Tensor::Ones({2, 3, 5, 6})).shape(),
            (Shape{2, 3, 5, 3}));
}

TEST(LinearTest, NoBiasOption) {
  Rng rng(5);
  Linear lin(4, 2, rng, /*bias=*/false);
  EXPECT_EQ(lin.NumParameters(), 8);
  // f(0) should be exactly 0 without bias.
  Tensor y = lin.Forward(Tensor::Zeros({1, 4}));
  EXPECT_NEAR(y.At({0, 0}), 0.0f, 1e-7);
}

TEST(LinearTest, GradCheck) {
  Rng rng(6);
  Linear lin(5, 3, rng);
  Rng data_rng(7);
  Tensor x = Tensor::Randn({4, 5}, data_rng);
  x.SetRequiresGrad(true);
  auto params = lin.Parameters();
  params.push_back(x);
  CheckGradients([&] { return SumAll(Mul(lin.Forward(x), lin.Forward(x))); },
                 params);
}

TEST(LayerNormTest, GradCheck) {
  Rng rng(8);
  LayerNorm ln(6);
  Rng data_rng(9);
  Tensor x = Tensor::Randn({3, 6}, data_rng);
  x.SetRequiresGrad(true);
  Tensor w = Tensor::Randn({3, 6}, data_rng);
  auto params = ln.Parameters();
  params.push_back(x);
  CheckGradients([&] { return SumAll(Mul(ln.Forward(x), w)); }, params, 1e-2,
                 4e-2, 4e-3);
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(10);
  Dropout drop(0.5f, rng);
  drop.SetTraining(false);
  Tensor x = Tensor::Ones({100});
  Tensor y = drop.Forward(x);
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(y.data()[i], 1.0f);
}

TEST(DropoutTest, TrainingModeMasksAndRescales) {
  Rng rng(11);
  Dropout drop(0.5f, rng);
  drop.SetTraining(true);
  Tensor x = Tensor::Ones({10000});
  Tensor y = drop.Forward(x);
  int64_t zeros = 0;
  double sum = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.data()[i], 2.0f, 1e-6);  // 1 / (1 - 0.5)
    }
    sum += y.data()[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.5, 0.03);
  EXPECT_NEAR(sum / y.numel(), 1.0, 0.05);  // expectation preserved
}

TEST(SequentialTest, ComposesAndRegistersChildren) {
  Rng rng(12);
  auto seq = std::make_shared<Sequential>();
  seq->Append(std::make_shared<Linear>(4, 8, rng));
  seq->Append(std::make_shared<nn::ReluLayer>());
  seq->Append(std::make_shared<Linear>(8, 2, rng));
  EXPECT_EQ(seq->size(), 3u);
  EXPECT_EQ(seq->NumParameters(), 4 * 8 + 8 + 8 * 2 + 2);
  EXPECT_EQ(seq->Forward(Tensor::Ones({3, 4})).shape(), (Shape{3, 2}));
}

TEST(AttentionTest, SelfAttentionShapesAndGrad) {
  Rng rng(13);
  MultiheadSelfAttention attn(8, 2, rng);
  Rng data_rng(14);
  Tensor x = Tensor::Randn({2, 5, 8}, data_rng, 0.5f);
  Tensor y = attn.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 8}));

  x.SetRequiresGrad(true);
  // Gradcheck a few parameters only (full sweep is slow): wq weight + input.
  std::vector<Tensor> subset = {attn.Parameters()[0], x};
  CheckGradients([&] { return SumAll(Mul(attn.Forward(x), attn.Forward(x))); },
                 subset, 1e-2, 5e-2, 6e-3);
}

TEST(AttentionTest, CrossAttentionQueryCountSetsOutputLength) {
  Rng rng(15);
  MultiheadSelfAttention attn(8, 2, rng);
  Rng data_rng(16);
  Tensor q = Tensor::Randn({2, 3, 8}, data_rng);
  Tensor kv = Tensor::Randn({2, 7, 8}, data_rng);
  EXPECT_EQ(attn.CrossForward(q, kv).shape(), (Shape{2, 3, 8}));
}

TEST(AttentionTest, PermutationEquivariance) {
  // Self-attention without positional encodings is permutation-equivariant:
  // permuting input tokens permutes outputs the same way.
  Rng rng(17);
  MultiheadSelfAttention attn(4, 1, rng);
  Rng data_rng(18);
  Tensor x = Tensor::Randn({1, 4, 4}, data_rng);
  Tensor y = attn.Forward(x);

  std::vector<int64_t> perm = {2, 0, 3, 1};
  Tensor xp = IndexSelect(x, 1, perm);
  Tensor yp = attn.Forward(xp);
  for (int64_t t = 0; t < 4; ++t) {
    for (int64_t d = 0; d < 4; ++d) {
      EXPECT_NEAR(yp.At({0, t, d}), y.At({0, perm[static_cast<size_t>(t)], d}),
                  1e-4);
    }
  }
}

TEST(TransformerTest, EncoderLayerPreservesShape) {
  Rng rng(19);
  TransformerEncoderLayer layer(8, 2, 16, rng);
  Rng data_rng(20);
  Tensor x = Tensor::Randn({3, 6, 8}, data_rng);
  EXPECT_EQ(layer.Forward(x).shape(), (Shape{3, 6, 8}));
}

TEST(TransformerTest, TrainingFlagPropagatesToChildren) {
  Rng rng(21);
  TransformerEncoderLayer layer(4, 1, 8, rng, /*dropout=*/0.2f);
  layer.SetTraining(false);
  // In eval mode the layer must be deterministic.
  Rng data_rng(22);
  Tensor x = Tensor::Randn({1, 3, 4}, data_rng);
  Tensor y1 = layer.Forward(x);
  Tensor y2 = layer.Forward(x);
  testing::ExpectTensorNear(y1, y2, 0.0);
}

}  // namespace
}  // namespace focus
