// Tests for ProtoAttn and the FOCUS model: shapes across a parameter grid,
// the Eq. 19 identical-rows property, linear-vs-quadratic FLOP scaling,
// ablation variants, gradient flow, and end-to-end overfitting.
#include <cmath>

#include <gtest/gtest.h>

#include "core/focus_model.h"
#include "core/offline.h"
#include "core/proto_attn.h"
#include "data/generator.h"
#include "data/window.h"
#include "optim/optimizer.h"
#include "tensor/flops.h"
#include "tests/test_util.h"

namespace focus {
namespace {

using core::FocusConfig;
using core::FocusModel;
using core::FocusVariant;
using core::ProtoAttn;

Tensor MakePrototypes(int64_t k, int64_t p, uint64_t seed) {
  Rng rng(seed);
  // Shape-space-like prototypes: zero-mean, unit-ish scale.
  Tensor protos = Tensor::Randn({k, p}, rng);
  for (int64_t j = 0; j < k; ++j) {
    float* row = protos.data() + j * p;
    float mean = 0;
    for (int64_t d = 0; d < p; ++d) mean += row[d];
    mean /= p;
    for (int64_t d = 0; d < p; ++d) row[d] -= mean;
  }
  return protos;
}

TEST(ProtoAttnTest, OutputShape) {
  Rng rng(1);
  auto embed = std::make_shared<nn::Linear>(8, 16, rng);
  ProtoAttn attn(MakePrototypes(4, 8, 2), embed, 16, 0.2f, rng);
  Rng data_rng(3);
  Tensor raw = Tensor::Randn({3, 5, 8}, data_rng);
  Tensor emb = embed->Forward(raw);
  Tensor out = attn.Forward(raw, emb);
  EXPECT_EQ(out.shape(), (Shape{3, 5, 16}));
  EXPECT_EQ(attn.last_assignment().shape(), (Shape{3, 5, 4}));
  EXPECT_EQ(attn.last_attention().shape(), (Shape{3, 4, 5}));
}

TEST(ProtoAttnTest, AssignmentMatrixIsOneHot) {
  Rng rng(4);
  auto embed = std::make_shared<nn::Linear>(8, 16, rng);
  ProtoAttn attn(MakePrototypes(6, 8, 5), embed, 16, 0.2f, rng);
  Rng data_rng(6);
  Tensor raw = Tensor::Randn({2, 7, 8}, data_rng);
  attn.Forward(raw, embed->Forward(raw));
  const Tensor& a = attn.last_assignment();
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t l = 0; l < 7; ++l) {
      float sum = 0;
      for (int64_t k = 0; k < 6; ++k) {
        const float v = a.At({b, l, k});
        EXPECT_TRUE(v == 0.0f || v == 1.0f);
        sum += v;
      }
      EXPECT_EQ(sum, 1.0f);  // exactly one bucket per token
    }
  }
}

TEST(ProtoAttnTest, Equation19SameAssignmentSameOutput) {
  // Tokens assigned to the same prototype must receive identical attention
  // output rows (paper Eq. 19) even if their raw values differ.
  Rng rng(7);
  auto embed = std::make_shared<nn::Linear>(8, 16, rng);
  Tensor protos = MakePrototypes(2, 8, 8);
  ProtoAttn attn(protos, embed, 16, 0.2f, rng);

  // Two tokens that are scaled copies of prototype 0 (same shape space),
  // one copy of prototype 1.
  Tensor raw = Tensor::Empty({1, 3, 8});
  for (int64_t d = 0; d < 8; ++d) {
    raw.data()[0 * 8 + d] = protos.At({0, d}) * 2.0f + 5.0f;
    raw.data()[1 * 8 + d] = protos.At({0, d}) * 0.5f - 1.0f;
    raw.data()[2 * 8 + d] = protos.At({1, d});
  }
  Tensor out = attn.Forward(raw, embed->Forward(raw));
  auto assigns = attn.AssignTokens(raw);
  ASSERT_EQ(assigns[0], assigns[1]);
  ASSERT_NE(assigns[0], assigns[2]);
  for (int64_t d = 0; d < 16; ++d) {
    EXPECT_NEAR(out.At({0, 0, d}), out.At({0, 1, d}), 1e-5)
        << "rows with equal assignment must match (Eq. 19)";
  }
}

TEST(ProtoAttnTest, FlopsScaleLinearlyInTokens) {
  // Doubling l must ~double ProtoAttn FLOPs (paper's central claim), while
  // full self-attention quadruples its score computation.
  Rng rng(9);
  auto embed = std::make_shared<nn::Linear>(8, 32, rng);
  ProtoAttn attn(MakePrototypes(8, 8, 10), embed, 32, 0.2f, rng);
  Rng data_rng(11);

  auto flops_for = [&](int64_t l) {
    Tensor raw = Tensor::Randn({1, l, 8}, data_rng);
    Tensor emb = embed->Forward(raw);
    NoGradGuard no_grad;
    FlopScope scope;
    attn.Forward(raw, emb);
    return static_cast<double>(scope.Elapsed());
  };
  const double f1 = flops_for(32);
  const double f2 = flops_for(64);
  const double f4 = flops_for(128);
  EXPECT_NEAR(f2 / f1, 2.0, 0.25);
  EXPECT_NEAR(f4 / f2, 2.0, 0.25);
}

TEST(ProtoAttnTest, GradientsFlowToProjections) {
  Rng rng(12);
  auto embed = std::make_shared<nn::Linear>(8, 16, rng);
  ProtoAttn attn(MakePrototypes(4, 8, 13), embed, 16, 0.2f, rng);
  Rng data_rng(14);
  Tensor raw = Tensor::Randn({2, 4, 8}, data_rng);
  Tensor emb = embed->Forward(raw);
  SumAll(attn.Forward(raw, emb)).Backward();
  for (const auto& [pname, param] : attn.NamedParameters()) {
    EXPECT_TRUE(param.Grad().defined()) << pname << " got no gradient";
  }
  // The shared embedding receives gradient through K/V too.
  EXPECT_TRUE(embed->Parameters()[0].Grad().defined());
}

// --- FocusModel -------------------------------------------------------------

struct ShapeCase {
  int64_t batch, entities, lookback, horizon, patch, k, d, m;
};

class FocusShapeTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(FocusShapeTest, ForwardShape) {
  const ShapeCase& c = GetParam();
  FocusConfig cfg;
  cfg.lookback = c.lookback;
  cfg.horizon = c.horizon;
  cfg.num_entities = c.entities;
  cfg.patch_len = c.patch;
  cfg.d_model = c.d;
  cfg.readout_queries = c.m;
  cfg.seed = 15;
  FocusModel model(cfg, MakePrototypes(c.k, c.patch, 16));
  Rng data_rng(17);
  Tensor x = Tensor::Randn({c.batch, c.entities, c.lookback}, data_rng);
  Tensor y = model.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{c.batch, c.entities, c.horizon}));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FocusShapeTest,
    ::testing::Values(ShapeCase{1, 2, 32, 8, 8, 4, 16, 2},
                      ShapeCase{2, 3, 64, 16, 16, 8, 32, 4},
                      ShapeCase{3, 1, 48, 24, 8, 4, 16, 6},
                      ShapeCase{2, 5, 96, 12, 12, 6, 24, 3}));

TEST(FocusModelTest, AllVariantsForwardAndName) {
  for (auto variant : {FocusVariant::kFull, FocusVariant::kAttn,
                       FocusVariant::kLnrFusion, FocusVariant::kAllLnr}) {
    FocusConfig cfg;
    cfg.lookback = 32;
    cfg.horizon = 8;
    cfg.num_entities = 3;
    cfg.patch_len = 8;
    cfg.d_model = 16;
    cfg.readout_queries = 2;
    cfg.variant = variant;
    cfg.seed = 18;
    FocusModel model(cfg, MakePrototypes(4, 8, 19));
    Rng data_rng(20);
    Tensor x = Tensor::Randn({2, 3, 32}, data_rng);
    EXPECT_EQ(model.Forward(x).shape(), (Shape{2, 3, 8}));
    EXPECT_FALSE(model.name().empty());
  }
  EXPECT_EQ(core::FocusVariantName(FocusVariant::kLnrFusion),
            "FOCUS-LnrFusion");
}

TEST(FocusModelTest, LnrFusionHasMoreParamsThanFull) {
  // Matches the paper's Table IV: the gated-linear fusion variant carries
  // more parameters than the readout-query fusion.
  auto make = [](FocusVariant v) {
    FocusConfig cfg;
    cfg.lookback = 64;
    cfg.horizon = 16;
    cfg.num_entities = 3;
    cfg.patch_len = 8;
    cfg.d_model = 32;
    cfg.readout_queries = 4;
    cfg.variant = v;
    cfg.seed = 21;
    return std::make_unique<FocusModel>(cfg, MakePrototypes(8, 8, 22));
  };
  EXPECT_GT(make(FocusVariant::kLnrFusion)->NumParameters(),
            make(FocusVariant::kFull)->NumParameters());
}

TEST(FocusModelTest, AttnVariantCostsMoreFlops) {
  auto flops_of = [](FocusVariant v) {
    FocusConfig cfg;
    cfg.lookback = 128;
    cfg.horizon = 16;
    cfg.num_entities = 4;
    cfg.patch_len = 8;
    cfg.d_model = 32;
    cfg.readout_queries = 4;
    cfg.variant = v;
    cfg.seed = 23;
    FocusModel model(cfg, MakePrototypes(4, 8, 24));
    model.SetTraining(false);
    Rng data_rng(25);
    Tensor x = Tensor::Randn({1, 4, 128}, data_rng);
    NoGradGuard no_grad;
    FlopScope scope;
    model.Forward(x);
    return scope.Elapsed();
  };
  // 16 temporal tokens vs 4 prototypes: self-attention must cost more.
  EXPECT_GT(flops_of(FocusVariant::kAttn), flops_of(FocusVariant::kFull));
}

TEST(FocusModelTest, MultiLayerExtractorStacks) {
  FocusConfig cfg;
  cfg.lookback = 32;
  cfg.horizon = 8;
  cfg.num_entities = 2;
  cfg.patch_len = 8;
  cfg.d_model = 16;
  cfg.readout_queries = 2;
  cfg.seed = 50;
  cfg.num_layers = 1;
  FocusModel one(cfg, MakePrototypes(4, 8, 51));
  cfg.num_layers = 3;
  FocusModel three(cfg, MakePrototypes(4, 8, 51));
  // Three layers carry strictly more parameters, still forward cleanly,
  // and gradients reach every layer's weights.
  EXPECT_GT(three.NumParameters(), one.NumParameters());
  Rng data_rng(52);
  Tensor x = Tensor::Randn({2, 2, 32}, data_rng);
  EXPECT_EQ(three.Forward(x).shape(), (Shape{2, 2, 8}));
  MseLoss(three.Forward(x), Tensor::Zeros({2, 2, 8})).Backward();
  for (const auto& [pname, param] : three.NamedParameters()) {
    EXPECT_TRUE(param.Grad().defined()) << pname;
  }
}

TEST(FocusModelTest, PositionalEmbeddingFlagChangesBehaviour) {
  FocusConfig cfg;
  cfg.lookback = 32;
  cfg.horizon = 8;
  cfg.num_entities = 2;
  cfg.patch_len = 8;
  cfg.d_model = 16;
  cfg.readout_queries = 2;
  cfg.seed = 53;
  FocusModel with_pos(cfg, MakePrototypes(4, 8, 54));
  cfg.positional_embedding = false;
  FocusModel without_pos(cfg, MakePrototypes(4, 8, 54));
  with_pos.SetTraining(false);
  without_pos.SetTraining(false);
  Rng data_rng(55);
  Tensor x = Tensor::Randn({1, 2, 32}, data_rng);
  NoGradGuard no_grad;
  Tensor a = with_pos.Forward(x);
  Tensor b = without_pos.Forward(x);
  bool differs = false;
  for (int64_t i = 0; i < a.numel() && !differs; ++i) {
    differs = std::fabs(a.data()[i] - b.data()[i]) > 1e-6f;
  }
  EXPECT_TRUE(differs);
}

TEST(FocusModelTest, InstanceNormMakesOutputScaleCovariant) {
  FocusConfig cfg;
  cfg.lookback = 32;
  cfg.horizon = 8;
  cfg.num_entities = 2;
  cfg.patch_len = 8;
  cfg.d_model = 16;
  cfg.readout_queries = 2;
  cfg.seed = 26;
  FocusModel model(cfg, MakePrototypes(4, 8, 27));
  model.SetTraining(false);
  Rng data_rng(28);
  Tensor x = Tensor::Randn({1, 2, 32}, data_rng);
  Tensor y1 = model.Forward(x);
  // Affine-transform the input; instance norm should make the output follow
  // the same affine map (shape space is shared).
  Tensor x2 = AddScalar(MulScalar(x, 3.0f), 10.0f);
  Tensor y2 = model.Forward(x2);
  for (int64_t i = 0; i < y1.numel(); ++i) {
    EXPECT_NEAR(y2.data()[i], 3.0f * y1.data()[i] + 10.0f, 2e-2f);
  }
}

TEST(FocusModelTest, GradientsReachAllParameters) {
  FocusConfig cfg;
  cfg.lookback = 32;
  cfg.horizon = 8;
  cfg.num_entities = 2;
  cfg.patch_len = 8;
  cfg.d_model = 16;
  cfg.readout_queries = 2;
  cfg.seed = 29;
  FocusModel model(cfg, MakePrototypes(4, 8, 30));
  Rng data_rng(31);
  Tensor x = Tensor::Randn({2, 2, 32}, data_rng);
  Tensor y = Tensor::Randn({2, 2, 8}, data_rng);
  MseLoss(model.Forward(x), y).Backward();
  for (const auto& [pname, param] : model.NamedParameters()) {
    EXPECT_TRUE(param.Grad().defined()) << pname << " got no gradient";
  }
}

TEST(FocusModelTest, EndToEndGradientCheck) {
  // Numerical gradient check through the entire composite graph (instance
  // norm -> embedding -> ProtoAttn x2 -> fusion -> denorm) on a tiny
  // config, for a few small parameter tensors.
  FocusConfig cfg;
  cfg.lookback = 16;
  cfg.horizon = 4;
  cfg.num_entities = 2;
  cfg.patch_len = 4;
  cfg.d_model = 8;
  cfg.readout_queries = 2;
  cfg.seed = 60;
  FocusModel model(cfg, MakePrototypes(3, 4, 61));
  Rng data_rng(62);
  Tensor x = Tensor::Randn({1, 2, 16}, data_rng);
  Tensor target = Tensor::Randn({1, 2, 4}, data_rng);

  std::vector<Tensor> probe_params;
  for (const auto& [pname, param] : model.NamedParameters()) {
    // Small, load-bearing tensors from distinct stages.
    if (pname == "temporal_norm0.gamma" || pname == "gate.bias" ||
        pname == "readout_proj_t" || pname == "embed.bias") {
      probe_params.push_back(param);
    }
  }
  ASSERT_EQ(probe_params.size(), 4u);
  testing::CheckGradients(
      [&] { return MseLoss(model.Forward(x), target); }, probe_params, 1e-2,
      6e-2, 8e-3);
}

TEST(FocusModelTest, OverfitsTinyDataset) {
  // End-to-end sanity: FOCUS + AdamW drives training loss near zero on a
  // small repeating problem.
  data::GeneratorConfig gen;
  gen.num_entities = 2;
  gen.num_steps = 400;
  gen.steps_per_day = 32;
  gen.noise_std = 0.02f;
  gen.event_rate = 0.0f;
  gen.seed = 32;
  Tensor values = data::Generate(gen).values;

  core::OfflineConfig off;
  off.patch_len = 8;
  off.num_prototypes = 6;
  off.seed = 33;
  auto protos = core::RunOfflineClustering(values, off);

  FocusConfig cfg;
  cfg.lookback = 64;
  cfg.horizon = 16;
  cfg.num_entities = 2;
  cfg.patch_len = 8;
  cfg.d_model = 24;
  cfg.readout_queries = 3;
  cfg.seed = 34;
  FocusModel model(cfg, protos.prototypes);

  data::WindowDataset windows(values, 64, 16, 0, 400);
  auto batch = windows.GetBatch({0, 40, 80, 120});
  optim::AdamW opt(model.Parameters(), 0.01f, 1e-4f);
  float first = 0, last = 0;
  for (int step = 0; step < 60; ++step) {
    opt.ZeroGrad();
    Tensor loss = MseLoss(model.Forward(batch.x), batch.y);
    if (step == 0) first = loss.Item();
    last = loss.Item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last, 0.25f * first);
}

}  // namespace
}  // namespace focus
