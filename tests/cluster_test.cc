// Tests for offline segment clustering: Pearson properties, the composite
// Eq. 6 distance (including the paper's Example 2), extraction, k-means++
// convergence, the Fig. 8 Rec-Only vs Rec+Corr ablation hook, prototype
// persistence and series approximation (Fig. 11).
#include "cluster/segment_clustering.h"

#include <cmath>
#include <cstdio>
#include <set>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "tests/test_util.h"

namespace focus {
namespace {

using cluster::ClusteringConfig;
using cluster::CompositeDistance;
using cluster::ExtractSegments;
using cluster::PearsonCorrelation;
using cluster::SegmentClustering;

TEST(PearsonTest, KnownValues) {
  const float a[] = {1, 2, 3};
  const float b[] = {2, 4, 6};       // perfectly correlated
  const float c[] = {3, 2, 1};       // perfectly anti-correlated
  const float flat[] = {5, 5, 5};    // constant
  EXPECT_NEAR(PearsonCorrelation(a, b, 3), 1.0f, 1e-6);
  EXPECT_NEAR(PearsonCorrelation(a, c, 3), -1.0f, 1e-6);
  EXPECT_NEAR(PearsonCorrelation(a, flat, 3), 0.0f, 1e-6);
  EXPECT_NEAR(PearsonCorrelation(a, a, 3), 1.0f, 1e-6);
}

TEST(PearsonTest, InvariantToAffineTransform) {
  const float a[] = {1, 4, 2, 8, 5, 7};
  float b[6];
  for (int i = 0; i < 6; ++i) b[i] = 3.0f * a[i] - 10.0f;
  EXPECT_NEAR(PearsonCorrelation(a, b, 6), 1.0f, 1e-6);
}

TEST(CompositeDistanceTest, PaperExampleTwo) {
  // Paper Example 2: A = {9,10,11}, B = {7,10,13}, C = {11,10,9}.
  // Euclidean d(A,B) == d(A,C), but correlation makes B closer.
  const float a[] = {9, 10, 11};
  const float b[] = {7, 10, 13};
  const float c[] = {11, 10, 9};
  const float l2_ab = CompositeDistance(a, b, 3, 0.0f);
  const float l2_ac = CompositeDistance(a, c, 3, 0.0f);
  EXPECT_NEAR(l2_ab, l2_ac, 1e-5);  // indistinguishable without correlation

  const float full_ab = CompositeDistance(a, b, 3, 0.5f);
  const float full_ac = CompositeDistance(a, c, 3, 0.5f);
  EXPECT_LT(full_ab, full_ac);  // Eq. 6 separates them
  // corr(A,B)=1 adds 0; corr(A,C)=-1 adds 2*alpha.
  EXPECT_NEAR(full_ab, l2_ab, 1e-5);
  EXPECT_NEAR(full_ac, l2_ac + 0.5f * 2.0f, 1e-5);
}

TEST(ExtractSegmentsTest, ShapesAndLayout) {
  Tensor values = Tensor::Arange(24).Reshape({2, 12});
  Tensor segs = ExtractSegments(values, 4, /*normalize=*/false);
  EXPECT_EQ(segs.shape(), (Shape{6, 4}));
  // Segment 0 = entity 0 steps [0,4), segment 3 = entity 1 steps [0,4).
  EXPECT_EQ(segs.At({0, 0}), 0.0f);
  EXPECT_EQ(segs.At({2, 3}), 11.0f);
  EXPECT_EQ(segs.At({3, 0}), 12.0f);
}

TEST(ExtractSegmentsTest, DropsRemainderSteps) {
  Tensor values = Tensor::Arange(22).Reshape({2, 11});
  Tensor segs = ExtractSegments(values, 4, false);
  EXPECT_EQ(segs.shape(), (Shape{4, 4}));  // 11/4 = 2 per entity
}

TEST(ExtractSegmentsTest, NormalizationMakesShapeSpace) {
  Tensor values = Tensor::FromVector({1, 8}, {0, 1, 2, 3, 100, 102, 104, 106});
  Tensor segs = ExtractSegments(values, 4, /*normalize=*/true);
  // Both segments are increasing ramps; in shape space they are ~identical.
  for (int64_t d = 0; d < 4; ++d) {
    EXPECT_NEAR(segs.At({0, d}), segs.At({1, d}), 1e-2);
  }
}

// Builds a dataset whose segments come from `k` distinct shape families.
Tensor MakeSyntheticSegments(int64_t per_family, int64_t p, Rng& rng) {
  std::vector<std::vector<float>> families;
  for (int f = 0; f < 3; ++f) {
    std::vector<float> shape(static_cast<size_t>(p));
    for (int64_t d = 0; d < p; ++d) {
      shape[static_cast<size_t>(d)] =
          std::sin(2.0f * 3.14159f * (d + 1) * (f + 1) / p);
    }
    families.push_back(shape);
  }
  Tensor segs = Tensor::Empty({3 * per_family, p});
  for (int64_t i = 0; i < 3 * per_family; ++i) {
    const auto& fam = families[static_cast<size_t>(i % 3)];
    for (int64_t d = 0; d < p; ++d) {
      segs.data()[i * p + d] =
          fam[static_cast<size_t>(d)] +
          0.05f * static_cast<float>(rng.Gaussian());
    }
  }
  return segs;
}

TEST(SegmentClusteringTest, RecoversPlantedClusters) {
  Rng rng(1);
  Tensor segs = MakeSyntheticSegments(40, 16, rng);
  ClusteringConfig cfg;
  cfg.segment_length = 16;
  cfg.num_prototypes = 3;
  cfg.seed = 2;
  SegmentClustering clustering(cfg);
  auto result = clustering.Fit(segs);

  EXPECT_EQ(result.prototypes.shape(), (Shape{3, 16}));
  ASSERT_EQ(result.assignments.size(), 120u);
  // Segments from the same family must land in the same bucket, and the
  // three families must use three distinct buckets.
  std::set<int64_t> buckets;
  for (int family = 0; family < 3; ++family) {
    const int64_t expected = result.assignments[static_cast<size_t>(family)];
    buckets.insert(expected);
    for (int64_t i = family; i < 120; i += 3) {
      EXPECT_EQ(result.assignments[static_cast<size_t>(i)], expected)
          << "segment " << i;
    }
  }
  EXPECT_EQ(buckets.size(), 3u);
}

TEST(SegmentClusteringTest, ObjectiveDecreasesMonotonically) {
  Rng rng(3);
  Tensor segs = MakeSyntheticSegments(30, 12, rng);
  ClusteringConfig cfg;
  cfg.segment_length = 12;
  cfg.num_prototypes = 4;
  cfg.seed = 4;
  cfg.max_iters = 15;
  SegmentClustering clustering(cfg);
  auto result = clustering.Fit(segs);
  ASSERT_GE(result.objective_history.size(), 2u);
  // Overall downward trend: final objective below the first.
  EXPECT_LT(result.objective_history.back(),
            result.objective_history.front() + 1e-9);
}

TEST(SegmentClusteringTest, AssignmentIsOptimalUnderCompositeDistance) {
  Rng rng(5);
  Tensor segs = MakeSyntheticSegments(10, 8, rng);
  ClusteringConfig cfg;
  cfg.segment_length = 8;
  cfg.num_prototypes = 3;
  cfg.seed = 6;
  SegmentClustering clustering(cfg);
  auto result = clustering.Fit(segs);
  for (int64_t i = 0; i < segs.size(0); ++i) {
    const float* seg = segs.data() + i * 8;
    const int64_t assigned = result.assignments[static_cast<size_t>(i)];
    const float assigned_d = CompositeDistance(
        seg, result.prototypes.data() + assigned * 8, 8, cfg.alpha);
    for (int64_t j = 0; j < 3; ++j) {
      const float d = CompositeDistance(
          seg, result.prototypes.data() + j * 8, 8, cfg.alpha);
      EXPECT_GE(d, assigned_d - 1e-5f);
    }
  }
}

TEST(SegmentClusteringTest, DeterministicPerSeed) {
  Rng rng(7);
  Tensor segs = MakeSyntheticSegments(20, 8, rng);
  ClusteringConfig cfg;
  cfg.segment_length = 8;
  cfg.num_prototypes = 3;
  cfg.seed = 8;
  auto r1 = SegmentClustering(cfg).Fit(segs);
  auto r2 = SegmentClustering(cfg).Fit(segs);
  testing::ExpectTensorNear(r1.prototypes, r2.prototypes, 0.0);
  EXPECT_EQ(r1.assignments, r2.assignments);
}

TEST(SegmentClusteringTest, RecOnlyDiffersFromRecCorr) {
  // The Fig. 8 ablation switch must actually change the fitted prototypes
  // on data where correlation matters.
  auto cfg_base = [] {
    ClusteringConfig cfg;
    cfg.segment_length = 16;
    cfg.num_prototypes = 6;
    cfg.seed = 9;
    return cfg;
  };
  data::GeneratorConfig gen;
  gen.num_entities = 6;
  gen.num_steps = 1600;
  gen.seed = 10;
  Tensor values = data::Generate(gen).values;
  Tensor segs = ExtractSegments(values, 16, true);

  ClusteringConfig with_corr = cfg_base();
  with_corr.use_correlation = true;
  ClusteringConfig rec_only = cfg_base();
  rec_only.use_correlation = false;

  auto r_corr = SegmentClustering(with_corr).Fit(segs);
  auto r_rec = SegmentClustering(rec_only).Fit(segs);
  double diff = 0;
  for (int64_t i = 0; i < r_corr.prototypes.numel(); ++i) {
    diff += std::fabs(r_corr.prototypes.data()[i] - r_rec.prototypes.data()[i]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(SegmentClusteringTest, PrototypesCorrelateWithAssignedSegments) {
  // With the correlation term on, average corr(segment, prototype) should
  // be strongly positive after fitting.
  Rng rng(11);
  Tensor segs = MakeSyntheticSegments(30, 16, rng);
  ClusteringConfig cfg;
  cfg.segment_length = 16;
  cfg.num_prototypes = 3;
  cfg.seed = 12;
  auto result = SegmentClustering(cfg).Fit(segs);
  double mean_corr = 0;
  for (int64_t i = 0; i < segs.size(0); ++i) {
    const int64_t j = result.assignments[static_cast<size_t>(i)];
    mean_corr += PearsonCorrelation(segs.data() + i * 16,
                                    result.prototypes.data() + j * 16, 16);
  }
  mean_corr /= segs.size(0);
  EXPECT_GT(mean_corr, 0.9);
}

TEST(SegmentClusteringTest, SaveLoadRoundTrip) {
  Rng rng(13);
  Tensor protos = Tensor::Randn({5, 12}, rng);
  const std::string path = ::testing::TempDir() + "/protos.bin";
  ASSERT_TRUE(cluster::SavePrototypes(path, protos).ok());
  auto loaded = cluster::LoadPrototypes(path);
  ASSERT_TRUE(loaded.ok());
  testing::ExpectTensorNear(loaded.value(), protos, 0.0);
}

TEST(SegmentClusteringTest, LoadRejectsCorruptFiles) {
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("NOTAPROT", 1, 8, f);
  std::fclose(f);
  auto loaded = cluster::LoadPrototypes(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);

  auto missing = cluster::LoadPrototypes("/nonexistent/path/x.bin");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kNotFound);
}

TEST(ApproximateSeriesTest, ReconstructionBeatsMeanBaseline) {
  // Fig. 11: k=8 prototypes + local mean/std approximate a day closely.
  data::GeneratorConfig gen;
  gen.num_entities = 4;
  gen.num_steps = 2400;
  gen.noise_std = 0.05f;
  gen.seed = 14;
  Tensor values = data::Generate(gen).values;
  Tensor segs = ExtractSegments(values, 16, true);
  ClusteringConfig cfg;
  cfg.segment_length = 16;
  cfg.num_prototypes = 8;
  cfg.seed = 15;
  auto result = SegmentClustering(cfg).Fit(segs);

  // Take entity 0's series and reconstruct.
  Tensor series = Slice(values, 0, 0, 1).Reshape({values.size(1)});
  Tensor approx =
      cluster::ApproximateSeries(series, result.prototypes, cfg.alpha);

  double err = 0, base_err = 0;
  for (int64_t i = 0; i < approx.numel(); ++i) {
    const float truth = series.data()[i];
    err += (approx.data()[i] - truth) * (approx.data()[i] - truth);
    // Baseline: per-segment constant mean.
    const int64_t seg = i / 16;
    double m = 0;
    for (int64_t d = 0; d < 16; ++d) m += series.data()[seg * 16 + d];
    m /= 16;
    base_err += (m - truth) * (m - truth);
  }
  EXPECT_LT(err, 0.5 * base_err);
}

}  // namespace
}  // namespace focus
