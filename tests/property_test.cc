// Property-based sweeps: invariants checked across randomized seeds and
// shape grids (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <cmath>

#include <gtest/gtest.h>

#include "cluster/segment_clustering.h"
#include "core/focus_model.h"
#include "core/proto_attn.h"
#include "data/instance_norm.h"
#include "nn/layers.h"
#include "tensor/ops.h"
#include "tests/test_util.h"

namespace focus {
namespace {

// ---------------------------------------------------------------- softmax --
class SoftmaxProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoftmaxProperty, RowsAreDistributions) {
  Rng rng(GetParam());
  const int64_t rows = 1 + static_cast<int64_t>(rng.UniformInt(6));
  const int64_t cols = 2 + static_cast<int64_t>(rng.UniformInt(30));
  Tensor x = Tensor::Randn({rows, cols}, rng, 5.0f);
  Tensor y = SoftmaxLastDim(x);
  for (int64_t r = 0; r < rows; ++r) {
    double sum = 0;
    for (int64_t c = 0; c < cols; ++c) {
      const float v = y.At({r, c});
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST_P(SoftmaxProperty, ShiftInvariance) {
  // softmax(x + c) == softmax(x) for any per-row constant c.
  Rng rng(GetParam() + 1000);
  Tensor x = Tensor::Randn({3, 9}, rng);
  Tensor shifted = AddScalar(x, 13.5f);
  testing::ExpectTensorNear(SoftmaxLastDim(x), SoftmaxLastDim(shifted), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ----------------------------------------------------------------- matmul --
class MatMulProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatMulProperty, DistributesOverAddition) {
  Rng rng(GetParam());
  const int64_t m = 2 + static_cast<int64_t>(rng.UniformInt(6));
  const int64_t k = 2 + static_cast<int64_t>(rng.UniformInt(6));
  const int64_t n = 2 + static_cast<int64_t>(rng.UniformInt(6));
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  Tensor c = Tensor::Randn({k, n}, rng);
  testing::ExpectTensorNear(MatMul(a, Add(b, c)),
                            Add(MatMul(a, b), MatMul(a, c)), 1e-4);
}

TEST_P(MatMulProperty, TransposeIdentity) {
  // (A B)^T == B^T A^T
  Rng rng(GetParam() + 500);
  Tensor a = Tensor::Randn({4, 6}, rng);
  Tensor b = Tensor::Randn({6, 3}, rng);
  testing::ExpectTensorNear(
      Transpose(MatMul(a, b), 0, 1),
      MatMul(Transpose(b, 0, 1), Transpose(a, 0, 1)), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatMulProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ------------------------------------------------------------- layer norm --
class LayerNormProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LayerNormProperty, OutputRowsStandardizedForIdentityAffine) {
  Rng rng(GetParam());
  const int64_t rows = 1 + static_cast<int64_t>(rng.UniformInt(5));
  const int64_t cols = 4 + static_cast<int64_t>(rng.UniformInt(28));
  Tensor x = Tensor::Randn({rows, cols}, rng, 3.0f);
  Tensor y = LayerNormLastDim(x, Tensor::Ones({cols}), Tensor::Zeros({cols}));
  for (int64_t r = 0; r < rows; ++r) {
    double mean = 0, var = 0;
    for (int64_t c = 0; c < cols; ++c) mean += y.At({r, c});
    mean /= cols;
    for (int64_t c = 0; c < cols; ++c) {
      var += (y.At({r, c}) - mean) * (y.At({r, c}) - mean);
    }
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var / cols, 1.0, 1e-2);
  }
}

TEST_P(LayerNormProperty, InvariantToInputScaleAndShift) {
  Rng rng(GetParam() + 77);
  Tensor x = Tensor::Randn({2, 12}, rng);
  Tensor gamma = Tensor::Ones({12});
  Tensor beta = Tensor::Zeros({12});
  Tensor y1 = LayerNormLastDim(x, gamma, beta);
  Tensor y2 = LayerNormLastDim(AddScalar(MulScalar(x, 4.0f), -3.0f), gamma,
                               beta);
  testing::ExpectTensorNear(y1, y2, 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayerNormProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------- instance norm --
class InstanceNormProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InstanceNormProperty, RoundTripAcrossShapes) {
  Rng rng(GetParam());
  const int64_t b = 1 + static_cast<int64_t>(rng.UniformInt(3));
  const int64_t n = 1 + static_cast<int64_t>(rng.UniformInt(5));
  const int64_t l = 8 + static_cast<int64_t>(rng.UniformInt(24));
  Tensor x = Tensor::Randn({b, n, l}, rng, 7.0f);
  data::InstanceNorm in;
  Tensor y = in.Denormalize(in.Normalize(x));
  testing::ExpectTensorNear(y, x, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InstanceNormProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------- pearson --
class PearsonProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PearsonProperty, BoundedSymmetricAndAffineInvariant) {
  Rng rng(GetParam());
  const int64_t n = 4 + static_cast<int64_t>(rng.UniformInt(28));
  std::vector<float> a(static_cast<size_t>(n)), b(static_cast<size_t>(n));
  for (auto& v : a) v = static_cast<float>(rng.Gaussian());
  for (auto& v : b) v = static_cast<float>(rng.Gaussian());

  const float corr = cluster::PearsonCorrelation(a.data(), b.data(), n);
  EXPECT_GE(corr, -1.0f - 1e-5f);
  EXPECT_LE(corr, 1.0f + 1e-5f);
  EXPECT_NEAR(corr, cluster::PearsonCorrelation(b.data(), a.data(), n), 1e-5);

  // Positive affine transform leaves corr unchanged; negation flips it.
  std::vector<float> scaled(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    scaled[static_cast<size_t>(i)] = 2.5f * b[static_cast<size_t>(i)] + 7.0f;
  }
  EXPECT_NEAR(cluster::PearsonCorrelation(a.data(), scaled.data(), n), corr,
              1e-4);
  for (auto& v : scaled) v = -v;
  EXPECT_NEAR(cluster::PearsonCorrelation(a.data(), scaled.data(), n), -corr,
              1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PearsonProperty,
                         ::testing::Range<uint64_t>(1, 13));

// ----------------------------------------------------- composite distance --
class CompositeDistanceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompositeDistanceProperty, NonNegativeAndZeroOnSelf) {
  Rng rng(GetParam());
  const int64_t p = 8;
  std::vector<float> s(static_cast<size_t>(p));
  for (auto& v : s) v = static_cast<float>(rng.Gaussian());
  // Self-distance: ||s-s||^2 + alpha * (1 - corr(s,s)) == 0.
  EXPECT_NEAR(cluster::CompositeDistance(s.data(), s.data(), p, 0.7f), 0.0f,
              1e-5);
  std::vector<float> t(static_cast<size_t>(p));
  for (auto& v : t) v = static_cast<float>(rng.Gaussian());
  EXPECT_GE(cluster::CompositeDistance(s.data(), t.data(), p, 0.7f), -1e-5f);
}

TEST_P(CompositeDistanceProperty, AlphaMonotoneForAntiCorrelated) {
  // For an anti-correlated pair, increasing alpha increases the distance.
  Rng rng(GetParam() + 31);
  const int64_t p = 8;
  std::vector<float> s(static_cast<size_t>(p)), t(static_cast<size_t>(p));
  for (int64_t i = 0; i < p; ++i) {
    s[static_cast<size_t>(i)] = static_cast<float>(rng.Gaussian());
    t[static_cast<size_t>(i)] = -s[static_cast<size_t>(i)];
  }
  const float d0 = cluster::CompositeDistance(s.data(), t.data(), p, 0.0f);
  const float d1 = cluster::CompositeDistance(s.data(), t.data(), p, 0.5f);
  const float d2 = cluster::CompositeDistance(s.data(), t.data(), p, 1.0f);
  EXPECT_LT(d0, d1);
  EXPECT_LT(d1, d2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompositeDistanceProperty,
                         ::testing::Range<uint64_t>(1, 9));

// -------------------------------------------------------------- ProtoAttn --
class ProtoAttnProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProtoAttnProperty, AttentionRowsAreDistributions) {
  Rng rng(GetParam());
  const int64_t p = 8, d = 16;
  const int64_t k = 2 + static_cast<int64_t>(rng.UniformInt(6));
  const int64_t l = 2 + static_cast<int64_t>(rng.UniformInt(10));
  auto embed = std::make_shared<nn::Linear>(p, d, rng);
  core::ProtoAttn attn(Tensor::Randn({k, p}, rng), embed, d, 0.2f, rng);
  Tensor raw = Tensor::Randn({2, l, p}, rng);
  attn.Forward(raw, embed->Forward(raw));
  const Tensor& alpha = attn.last_attention();
  ASSERT_EQ(alpha.shape(), (Shape{2, k, l}));
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t kk = 0; kk < k; ++kk) {
      double sum = 0;
      for (int64_t ll = 0; ll < l; ++ll) sum += alpha.At({b, kk, ll});
      EXPECT_NEAR(sum, 1.0, 1e-4);
    }
  }
}

TEST_P(ProtoAttnProperty, Equation19HoldsForRandomInputs) {
  // Any two tokens with equal assignment produce equal outputs.
  Rng rng(GetParam() + 17);
  const int64_t p = 8, d = 16, k = 3, l = 12;
  auto embed = std::make_shared<nn::Linear>(p, d, rng);
  core::ProtoAttn attn(Tensor::Randn({k, p}, rng), embed, d, 0.2f, rng);
  Tensor raw = Tensor::Randn({1, l, p}, rng);
  // Copy token 0 over token 5 (identical raw -> identical assignment).
  for (int64_t i = 0; i < p; ++i) raw.data()[5 * p + i] = raw.data()[i];
  // Pre-attention outputs before the residual path: compare the A-scatter
  // result. Embedding is shared so equal raw tokens embed equally too.
  Tensor out = attn.Forward(raw, embed->Forward(raw));
  for (int64_t i = 0; i < d; ++i) {
    EXPECT_NEAR(out.At({0, 0, i}), out.At({0, 5, i}), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtoAttnProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ----------------------------------------------------- clustering assign --
class AssignProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AssignProperty, AssignmentMinimizesCompositeDistance) {
  Rng rng(GetParam());
  const int64_t p = 8, k = 4, n = 40;
  Tensor segments = Tensor::Randn({n, p}, rng);
  Tensor protos = Tensor::Randn({k, p}, rng);
  auto assigns = cluster::SegmentClustering::Assign(segments, protos, 0.3f);
  for (int64_t i = 0; i < n; ++i) {
    const float assigned = cluster::CompositeDistance(
        segments.data() + i * p,
        protos.data() + assigns[static_cast<size_t>(i)] * p, p, 0.3f);
    for (int64_t j = 0; j < k; ++j) {
      EXPECT_GE(cluster::CompositeDistance(segments.data() + i * p,
                                           protos.data() + j * p, p, 0.3f),
                assigned - 1e-5f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ----------------------------------------------------- batch consistency --
class BatchConsistencyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchConsistencyProperty, ProtoAttnBatchEqualsPerSample) {
  // Processing two samples in one batch must equal processing them
  // separately — no cross-batch leakage anywhere in ProtoAttn.
  Rng rng(GetParam());
  const int64_t p = 8, d = 16, k = 4, l = 6;
  auto embed = std::make_shared<nn::Linear>(p, d, rng);
  core::ProtoAttn attn(Tensor::Randn({k, p}, rng), embed, d, 0.2f, rng);

  Tensor x1 = Tensor::Randn({1, l, p}, rng);
  Tensor x2 = Tensor::Randn({1, l, p}, rng);
  Tensor both = Cat({x1, x2}, 0);
  NoGradGuard no_grad;
  Tensor y1 = attn.Forward(x1, embed->Forward(x1));
  Tensor y2 = attn.Forward(x2, embed->Forward(x2));
  Tensor yb = attn.Forward(both, embed->Forward(both));
  for (int64_t i = 0; i < l; ++i) {
    for (int64_t c = 0; c < d; ++c) {
      EXPECT_NEAR(yb.At({0, i, c}), y1.At({0, i, c}), 1e-5);
      EXPECT_NEAR(yb.At({1, i, c}), y2.At({0, i, c}), 1e-5);
    }
  }
}

TEST_P(BatchConsistencyProperty, FocusModelBatchEqualsPerSample) {
  Rng rng(GetParam() + 500);
  core::FocusConfig cfg;
  cfg.lookback = 32;
  cfg.horizon = 8;
  cfg.num_entities = 2;
  cfg.patch_len = 8;
  cfg.d_model = 16;
  cfg.readout_queries = 2;
  cfg.seed = GetParam();
  core::FocusModel model(cfg, Tensor::Randn({4, 8}, rng));
  model.SetTraining(false);
  Tensor x1 = Tensor::Randn({1, 2, 32}, rng);
  Tensor x2 = Tensor::Randn({1, 2, 32}, rng);
  NoGradGuard no_grad;
  Tensor y1 = model.Forward(x1);
  Tensor yb = model.Forward(Cat({x1, x2}, 0));
  for (int64_t e = 0; e < 2; ++e) {
    for (int64_t i = 0; i < 8; ++i) {
      EXPECT_NEAR(yb.At({0, e, i}), y1.At({0, e, i}), 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchConsistencyProperty,
                         ::testing::Range<uint64_t>(1, 5));

// ------------------------------------------------------ broadcast algebra --
TEST(BroadcastProperty, SymmetricAndIdempotent) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const int64_t a = 1 + static_cast<int64_t>(rng.UniformInt(4));
    const int64_t b = 1 + static_cast<int64_t>(rng.UniformInt(4));
    Shape s1 = {a, 1};
    Shape s2 = {1, b};
    EXPECT_EQ(BroadcastShapes(s1, s2), BroadcastShapes(s2, s1));
    EXPECT_EQ(BroadcastShapes(s1, s1), s1);
  }
}

// -------------------------------------------------------------- reduction --
class ReductionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReductionProperty, SumOverAllAxesMatchesSumAll) {
  Rng rng(GetParam());
  Tensor x = Tensor::Randn({3, 4, 5}, rng);
  Tensor reduced = Sum(Sum(Sum(x, 2, false), 1, false), 0, false);
  EXPECT_NEAR(reduced.Item(), SumAll(x).Item(), 1e-3);
}

TEST_P(ReductionProperty, MeanIsSumOverCount) {
  Rng rng(GetParam() + 44);
  Tensor x = Tensor::Randn({4, 6}, rng);
  testing::ExpectTensorNear(Mean(x, 1, false),
                            MulScalar(Sum(x, 1, false), 1.0f / 6.0f), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionProperty,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace focus
