// Autograd correctness: finite-difference gradient checks for every
// differentiable op, plus tape-engine behaviours (accumulation, reuse,
// detach, NoGradGuard).
#include "tensor/autograd.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tests/test_util.h"

namespace focus {
namespace {

using testing::CheckGradients;

Tensor MakeParam(Shape shape, uint64_t seed, float stddev = 1.0f) {
  Rng rng(seed);
  Tensor t = Tensor::Randn(std::move(shape), rng, stddev);
  t.SetRequiresGrad(true);
  return t;
}

TEST(AutogradTest, AddBackward) {
  Tensor a = MakeParam({2, 3}, 1);
  Tensor b = MakeParam({2, 3}, 2);
  CheckGradients([&] { return SumAll(Add(a, b)); }, {a, b});
}

TEST(AutogradTest, BroadcastAddBackward) {
  Tensor a = MakeParam({2, 3}, 3);
  Tensor b = MakeParam({3}, 4);
  CheckGradients([&] { return SumAll(Mul(Add(a, b), Add(a, b))); }, {a, b});
}

TEST(AutogradTest, SubMulDivBackward) {
  Tensor a = MakeParam({4}, 5);
  Tensor b = MakeParam({4}, 6);
  // Keep denominators away from zero.
  for (int64_t i = 0; i < 4; ++i) b.data()[i] = 2.0f + std::fabs(b.data()[i]);
  CheckGradients([&] { return SumAll(Div(Mul(a, Sub(a, b)), b)); }, {a, b});
}

TEST(AutogradTest, BroadcastMulColumnBackward) {
  Tensor a = MakeParam({3, 4}, 7);
  Tensor b = MakeParam({3, 1}, 8);
  CheckGradients([&] { return MeanAll(Mul(a, b)); }, {a, b});
}

TEST(AutogradTest, ScalarOpsBackward) {
  Tensor a = MakeParam({5}, 9);
  CheckGradients([&] { return SumAll(MulScalar(AddScalar(a, 3.0f), -2.0f)); },
                 {a});
}

TEST(AutogradTest, PowScalarBackward) {
  Tensor a = MakeParam({5}, 10);
  for (int64_t i = 0; i < 5; ++i) a.data()[i] = 0.5f + std::fabs(a.data()[i]);
  CheckGradients([&] { return SumAll(PowScalar(a, 3.0f)); }, {a});
}

struct UnaryCase {
  const char* name;
  Tensor (*op)(const Tensor&);
  bool positive_only;
};

class UnaryGradTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradTest, MatchesFiniteDifference) {
  const UnaryCase& c = GetParam();
  Tensor a = MakeParam({6}, 11);
  for (int64_t i = 0; i < 6; ++i) {
    if (c.positive_only) {
      a.data()[i] = 0.5f + std::fabs(a.data()[i]);
    } else {
      // Keep away from non-differentiable kinks (0 for relu/abs).
      if (std::fabs(a.data()[i]) < 0.2f) a.data()[i] += 0.5f;
    }
  }
  CheckGradients([&] { return SumAll(Mul(c.op(a), c.op(a))); }, {a});
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryGradTest,
    ::testing::Values(UnaryCase{"Neg", &Neg, false},
                      UnaryCase{"Exp", &Exp, false},
                      UnaryCase{"Log", &Log, true},
                      UnaryCase{"Sqrt", &Sqrt, true},
                      UnaryCase{"Abs", &Abs, false},
                      UnaryCase{"Relu", &Relu, false},
                      UnaryCase{"Gelu", &Gelu, false},
                      UnaryCase{"Sigmoid", &Sigmoid, false},
                      UnaryCase{"Tanh", &Tanh, false}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      return info.param.name;
    });

TEST(AutogradTest, MatMul2DBackward) {
  Tensor a = MakeParam({3, 4}, 12);
  Tensor b = MakeParam({4, 2}, 13);
  CheckGradients([&] { return SumAll(Mul(MatMul(a, b), MatMul(a, b))); },
                 {a, b});
}

TEST(AutogradTest, MatMulBatchedBackward) {
  Tensor a = MakeParam({2, 3, 4}, 14);
  Tensor b = MakeParam({2, 4, 2}, 15);
  CheckGradients([&] { return SumAll(MatMul(a, b)); }, {a, b});
}

TEST(AutogradTest, MatMulBroadcastRhsBackward) {
  Tensor a = MakeParam({2, 3, 4}, 16);
  Tensor b = MakeParam({4, 2}, 17);
  CheckGradients([&] { return SumAll(Mul(MatMul(a, b), MatMul(a, b))); },
                 {a, b});
}

TEST(AutogradTest, MatMulBroadcastLhsBackward) {
  Tensor a = MakeParam({3, 4}, 18);
  Tensor b = MakeParam({2, 4, 2}, 19);
  CheckGradients([&] { return SumAll(MatMul(a, b)); }, {a, b});
}

TEST(AutogradTest, ReductionBackward) {
  Tensor a = MakeParam({3, 4}, 20);
  CheckGradients(
      [&] { return SumAll(Mul(Sum(a, 0, false), Sum(a, 0, false))); },
                 {a});
  CheckGradients(
      [&] { return SumAll(Mul(Mean(a, 1, true), Mean(a, 1, true))); },
                 {a});
  CheckGradients([&] { return MeanAll(Mul(a, a)); }, {a});
}

TEST(AutogradTest, BroadcastToBackward) {
  Tensor a = MakeParam({1, 4}, 21);
  CheckGradients(
      [&] {
        Tensor big = BroadcastTo(a, {3, 4});
        return SumAll(Mul(big, big));
      },
      {a});
}

TEST(AutogradTest, SoftmaxBackward) {
  Tensor a = MakeParam({3, 5}, 22);
  Rng rng(99);
  Tensor w = Tensor::Randn({3, 5}, rng);  // fixed mixing weights
  CheckGradients([&] { return SumAll(Mul(SoftmaxLastDim(a), w)); }, {a});
}

TEST(AutogradTest, LayerNormBackward) {
  Tensor x = MakeParam({4, 6}, 23);
  Tensor gamma = MakeParam({6}, 24);
  Tensor beta = MakeParam({6}, 25);
  Rng rng(98);
  Tensor w = Tensor::Randn({4, 6}, rng);
  CheckGradients(
      [&] { return SumAll(Mul(LayerNormLastDim(x, gamma, beta), w)); },
      {x, gamma, beta}, 1e-2, 4e-2, 4e-3);
}

TEST(AutogradTest, ShapeOpsBackward) {
  Tensor a = MakeParam({2, 6}, 26);
  CheckGradients(
      [&] {
        Tensor r = Reshape(a, {3, 4});
        Tensor t = Transpose(r, 0, 1);
        return SumAll(Mul(t, t));
      },
      {a});
}

TEST(AutogradTest, PermuteBackward) {
  Tensor a = MakeParam({2, 3, 4}, 27);
  CheckGradients(
      [&] {
        Tensor p = Permute(a, {2, 0, 1});
        return SumAll(Mul(p, p));
      },
      {a});
}

TEST(AutogradTest, SliceBackward) {
  Tensor a = MakeParam({4, 5}, 28);
  CheckGradients(
      [&] {
        Tensor s = Slice(a, 1, 1, 4);
        return SumAll(Mul(s, s));
      },
      {a});
}

TEST(AutogradTest, CatBackward) {
  Tensor a = MakeParam({2, 3}, 29);
  Tensor b = MakeParam({2, 2}, 30);
  CheckGradients(
      [&] {
        Tensor c = Cat({a, b}, 1);
        return SumAll(Mul(c, c));
      },
      {a, b});
}

TEST(AutogradTest, IndexSelectBackwardWithRepeats) {
  Tensor a = MakeParam({4, 3}, 31);
  CheckGradients(
      [&] {
        Tensor s = IndexSelect(a, 0, {0, 2, 2, 1});
        return SumAll(Mul(s, s));
      },
      {a});
}

TEST(AutogradTest, IndexSelectInnerDimBackward) {
  Tensor a = MakeParam({3, 5}, 63);
  CheckGradients(
      [&] {
        Tensor s = IndexSelect(a, 1, {4, 0, 0, 2});
        return SumAll(Mul(s, s));
      },
      {a});
}

TEST(AutogradTest, CatLeadingDimBackward) {
  Tensor a = MakeParam({2, 3}, 64);
  Tensor b = MakeParam({4, 3}, 65);
  CheckGradients(
      [&] {
        Tensor c = Cat({a, b}, 0);
        return SumAll(Mul(c, c));
      },
      {a, b});
}

TEST(AutogradTest, Conv2dStridedBackward) {
  Tensor x = MakeParam({1, 1, 6, 6}, 66);
  Tensor w = MakeParam({2, 1, 3, 3}, 67, 0.4f);
  CheckGradients(
      [&] {
        Tensor y = Conv2d(x, w, Tensor(), /*stride=*/2, /*padding=*/1);
        return SumAll(Mul(y, y));
      },
      {x, w}, 1e-2, 5e-2, 8e-3);
}

TEST(AutogradTest, Conv1dBackward) {
  Tensor x = MakeParam({2, 3, 8}, 32);
  Tensor w = MakeParam({4, 3, 3}, 33, 0.5f);
  Tensor b = MakeParam({4}, 34);
  CheckGradients(
      [&] {
        Tensor y = Conv1d(x, w, b, 1, 1);
        return SumAll(Mul(y, y));
      },
      {x, w, b}, 1e-2, 4e-2, 5e-3);
}

TEST(AutogradTest, Conv1dStridedDilatedBackward) {
  Tensor x = MakeParam({1, 2, 10}, 35);
  Tensor w = MakeParam({2, 2, 2}, 36, 0.5f);
  CheckGradients(
      [&] {
        Tensor y = Conv1d(x, w, Tensor(), 2, 0, 2);
        return SumAll(Mul(y, y));
      },
      {x, w}, 1e-2, 4e-2, 5e-3);
}

TEST(AutogradTest, Conv2dBackward) {
  Tensor x = MakeParam({1, 2, 5, 5}, 37);
  Tensor w = MakeParam({3, 2, 3, 3}, 38, 0.3f);
  Tensor b = MakeParam({3}, 39);
  CheckGradients(
      [&] {
        Tensor y = Conv2d(x, w, b, 1, 1);
        return SumAll(Mul(y, y));
      },
      {x, w, b}, 1e-2, 5e-2, 8e-3);
}

TEST(AutogradTest, GradAccumulatesWhenTensorReused) {
  Tensor a = MakeParam({3}, 40);
  Tensor loss = Add(SumAll(a), SumAll(a));
  loss.Backward();
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(a.Grad().data()[i], 2.0f, 1e-6);
  }
}

TEST(AutogradTest, RepeatedBackwardAccumulates) {
  Tensor a = MakeParam({2}, 41);
  SumAll(a).Backward();
  SumAll(a).Backward();
  EXPECT_NEAR(a.Grad().data()[0], 2.0f, 1e-6);
  a.ZeroGrad();
  EXPECT_FALSE(a.Grad().defined());
}

TEST(AutogradTest, DetachBlocksGradient) {
  Tensor a = MakeParam({3}, 42);
  Tensor loss = SumAll(Mul(a.Detach(), a));
  loss.Backward();
  // d/da (a_detached * a) = a_detached (only one path).
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(a.Grad().data()[i], a.data()[i], 1e-5);
  }
}

TEST(AutogradTest, NoGradGuardSuppressesGraph) {
  Tensor a = MakeParam({3}, 43);
  NoGradGuard guard;
  Tensor y = Mul(a, a);
  EXPECT_FALSE(y.requires_grad());
  EXPECT_EQ(y.grad_fn(), nullptr);
}

TEST(AutogradTest, DiamondGraphAccumulatesBothPaths) {
  Tensor a = MakeParam({1}, 44);
  a.data()[0] = 3.0f;
  Tensor b = Mul(a, a);           // a^2
  Tensor loss = Add(b, Mul(b, a));  // a^2 + a^3
  loss.Backward();
  // d/da = 2a + 3a^2 = 6 + 27 = 33
  EXPECT_NEAR(a.Grad().Item(), 33.0f, 1e-4);
}

TEST(AutogradTest, BackwardOnLeafScalar) {
  Tensor a = MakeParam({1}, 45);
  a.Backward();
  EXPECT_NEAR(a.Grad().Item(), 1.0f, 1e-6);
}

TEST(AutogradTest, LongChainGradientIsStable) {
  Tensor a = MakeParam({4}, 46, 0.1f);
  CheckGradients(
      [&] {
        Tensor x = a;
        for (int i = 0; i < 10; ++i) x = Tanh(AddScalar(x, 0.01f));
        return SumAll(x);
      },
      {a});
}

}  // namespace
}  // namespace focus
