// Tests for the multi-tenant forecast serving engine (src/serve):
// admission micro-batching semantics on the request queue, bit-identity
// of served forecasts against the eager single-request forward across
// batch compositions and padding, the zero-global-allocator-calls
// steady-state contract of the arena-leased request path, latency/
// throughput telemetry, and shutdown draining.
#include "serve/engine.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/focus_model.h"
#include "obs/metrics_registry.h"
#include "serve/request_queue.h"
#include "tensor/allocator.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace focus {
namespace {

using core::FocusConfig;
using core::FocusModel;
using serve::ForecastEngine;
using serve::PendingForecast;
using serve::Request;
using serve::RequestQueue;
using serve::ServeOptions;

constexpr int64_t kEntities = 3;
constexpr int64_t kLookback = 32;
constexpr int64_t kHorizon = 8;

Tensor MakePrototypes(int64_t k, int64_t p, uint64_t seed) {
  Rng rng(seed);
  Tensor protos = Tensor::Randn({k, p}, rng);
  for (int64_t j = 0; j < k; ++j) {
    float* row = protos.data() + j * p;
    float mean = 0;
    for (int64_t d = 0; d < p; ++d) mean += row[d];
    mean /= p;
    for (int64_t d = 0; d < p; ++d) row[d] -= mean;
  }
  return protos;
}

std::unique_ptr<FocusModel> ServableModel() {
  FocusConfig cfg;
  cfg.lookback = kLookback;
  cfg.horizon = kHorizon;
  cfg.num_entities = kEntities;
  cfg.patch_len = 8;
  cfg.d_model = 16;
  cfg.readout_queries = 2;
  cfg.seed = 31;
  auto model =
      std::make_unique<FocusModel>(cfg, MakePrototypes(4, 8, 37));
  model->SetTraining(false);
  return model;
}

Tensor MakeWindow(uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn({kEntities, kLookback}, rng);
}

// The determinism reference: the eager batch-1 forward of one window.
Tensor EagerReference(FocusModel& model, const Tensor& window) {
  InferenceModeGuard inference;
  Tensor out = model.Forward(window.Reshape({1, kEntities, kLookback}));
  Tensor ref = Tensor::Empty({kEntities, kHorizon});
  std::memcpy(ref.data(), out.data(),
              static_cast<size_t>(kEntities * kHorizon) * sizeof(float));
  return ref;
}

void ExpectSameBytes(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(a.defined());
  ASSERT_TRUE(b.defined());
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<size_t>(a.numel()) * sizeof(float)))
      << what;
}

TEST(RequestQueueTest, PopBatchTakesWhatIsQueuedWithoutWindow) {
  RequestQueue queue(8);
  PendingForecast slots[3];
  for (int i = 0; i < 3; ++i) {
    Request r;
    r.window = MakeWindow(100 + i);
    r.done = &slots[i];
    ASSERT_TRUE(queue.Push(std::move(r)));
  }
  EXPECT_EQ(queue.depth(), 3);
  Request out[8];
  EXPECT_EQ(queue.PopBatch(out, 8, /*window_us=*/0), 3);
  EXPECT_EQ(queue.depth(), 0);
  EXPECT_EQ(out[0].done, &slots[0]);
  EXPECT_EQ(out[2].done, &slots[2]);
}

TEST(RequestQueueTest, AdmissionWindowCoalescesLateArrivals) {
  RequestQueue queue(8);
  PendingForecast first_slot, late_slot;
  Request first;
  first.window = MakeWindow(1);
  first.done = &first_slot;
  ASSERT_TRUE(queue.Push(std::move(first)));
  std::thread late([&] {
    Request r;
    r.window = MakeWindow(2);
    r.done = &late_slot;
    ASSERT_TRUE(queue.Push(std::move(r)));
  });
  // A generous window admits the concurrent pusher into the same batch.
  Request out[8];
  const int got = queue.PopBatch(out, 8, /*window_us=*/2 * 1000 * 1000);
  late.join();
  EXPECT_EQ(got, 2);
}

TEST(RequestQueueTest, CloseFailsPushesAndDrainsPops) {
  RequestQueue queue(4);
  PendingForecast slot;
  Request r;
  r.window = MakeWindow(3);
  r.done = &slot;
  ASSERT_TRUE(queue.Push(std::move(r)));
  queue.Close();
  Request rejected;
  rejected.window = MakeWindow(4);
  rejected.done = &slot;
  EXPECT_FALSE(queue.Push(std::move(rejected)));
  Request out[4];
  EXPECT_EQ(queue.PopBatch(out, 4, 1000), 1);  // drains the admitted one
  EXPECT_EQ(queue.PopBatch(out, 4, 1000), 0);  // closed and empty
}

TEST(ServeTest, SingleRequestMatchesEagerBitIdentical) {
  auto model = ServableModel();
  Tensor window = MakeWindow(41);
  Tensor ref = EagerReference(*model, window);
  ServeOptions opts;
  opts.threads = 1;
  opts.batch_window_us = 0;
  opts.max_batch = 4;
  ForecastEngine engine(model.get(), kEntities, kLookback, opts);
  Tensor served = engine.Forecast(window);
  ExpectSameBytes(served, ref, "served vs eager");
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.planned_batches, 1);
  EXPECT_EQ(stats.eager_batches, 0);
}

TEST(ServeTest, PausedBurstCoalescesIntoOneBatch) {
  auto model = ServableModel();
  constexpr int kBurst = 8;
  std::vector<Tensor> windows, refs;
  for (int i = 0; i < kBurst; ++i) {
    windows.push_back(MakeWindow(50 + i));
    refs.push_back(EagerReference(*model, windows.back()));
  }
  ServeOptions opts;
  opts.threads = 1;
  opts.batch_window_us = 0;
  opts.max_batch = kBurst;
  opts.start_paused = true;
  ForecastEngine engine(model.get(), kEntities, kLookback, opts);
  std::vector<PendingForecast> slots(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(engine.Submit(windows[i], &slots[i]));
  }
  engine.Start();
  for (int i = 0; i < kBurst; ++i) {
    ExpectSameBytes(slots[i].Wait(), refs[i], "burst member vs eager");
  }
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, kBurst);
  // All eight were queued before any worker existed: one planned
  // batch-8 forward, not eight batch-1 forwards.
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.planned_batches, 1);
  EXPECT_EQ(stats.padded_rows, 0);
}

TEST(ServeTest, BatchPaddingDoesNotChangeBits) {
  auto model = ServableModel();
  std::vector<Tensor> windows, refs;
  for (int i = 0; i < 3; ++i) {
    windows.push_back(MakeWindow(70 + i));
    refs.push_back(EagerReference(*model, windows.back()));
  }
  ServeOptions opts;
  opts.threads = 1;
  opts.batch_window_us = 0;
  opts.max_batch = 8;  // ladder {1,2,4,8}: 3 requests pad to 4 rows
  opts.start_paused = true;
  ForecastEngine engine(model.get(), kEntities, kLookback, opts);
  std::vector<PendingForecast> slots(3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine.Submit(windows[i], &slots[i]));
  }
  engine.Start();
  for (int i = 0; i < 3; ++i) {
    ExpectSameBytes(slots[i].Wait(), refs[i], "padded batch vs eager");
  }
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.padded_rows, 1);
}

TEST(ServeTest, EntityRequestsReturnTheirRows) {
  auto model = ServableModel();
  Tensor window = MakeWindow(83);
  Tensor ref = EagerReference(*model, window);
  ServeOptions opts;
  opts.threads = 1;
  opts.max_batch = 4;
  ForecastEngine engine(model.get(), kEntities, kLookback, opts);
  for (int64_t entity = 0; entity < kEntities; ++entity) {
    Tensor row = engine.Forecast(window, entity);
    ASSERT_EQ(row.shape(), (Shape{kHorizon}));
    EXPECT_EQ(0, std::memcmp(row.data(), ref.data() + entity * kHorizon,
                             static_cast<size_t>(kHorizon) * sizeof(float)))
        << "entity " << entity;
  }
}

TEST(ServeTest, ConcurrentClientsBitIdenticalAndBatched) {
  auto model = ServableModel();
  constexpr int kClients = 4;
  constexpr int kPerClient = 10;
  std::vector<std::vector<Tensor>> windows(kClients);
  std::vector<std::vector<Tensor>> refs(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      windows[c].push_back(
          MakeWindow(1000 + static_cast<uint64_t>(c) * 100 + i));
      refs[c].push_back(EagerReference(*model, windows[c].back()));
    }
  }
  ServeOptions opts;
  opts.threads = 2;
  opts.batch_window_us = 500;
  opts.max_batch = 8;
  ForecastEngine engine(model.get(), kEntities, kLookback, opts);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        Tensor served = engine.Forecast(windows[c][i]);
        ExpectSameBytes(served, refs[c][i], "concurrent client vs eager");
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, kClients * kPerClient);
  EXPECT_EQ(stats.eager_batches, 0)
      << "every admitted batch size must be prewarmed";
}

TEST(ServeTest, ZeroSteadyStateGlobalAllocatorCallsOnRequestPath) {
  // The contract needs the caching allocator active: under a bypass cap
  // (FOCUS_ALLOC_CACHE_MB=0, the ASan leg) every free goes back to the
  // system and the assertion below would be vacuously false.
  Allocator& allocator = Allocator::Get();
  const int64_t saved_cap = allocator.cap_bytes();
  allocator.SetCapBytes(256 * (int64_t{1} << 20));

  auto model = ServableModel();
  ServeOptions opts;
  opts.threads = 1;
  opts.batch_window_us = 0;
  opts.max_batch = 8;
  opts.start_paused = true;
  ForecastEngine engine(model.get(), kEntities, kLookback, opts);

  std::vector<Tensor> windows;
  for (int i = 0; i < 8; ++i) windows.push_back(MakeWindow(300 + i));

  // One paused burst of every size the ladder admits, so every arena
  // slab class and response-buffer class the steady state will touch is
  // in the free lists before measuring.
  auto run_burst = [&](int size) {
    std::vector<PendingForecast> slots(static_cast<size_t>(size));
    for (int i = 0; i < size; ++i) {
      ASSERT_TRUE(engine.Submit(windows[static_cast<size_t>(i)],
                                &slots[static_cast<size_t>(i)]));
    }
    for (int i = 0; i < size; ++i) {
      ASSERT_TRUE(slots[static_cast<size_t>(i)].Wait().defined());
    }
  };
  engine.Start();
  for (int round = 0; round < 2; ++round) {
    for (int size = 1; size <= 8; ++size) run_burst(size);
  }

  const AllocatorStats before = allocator.Stats();
  const serve::EngineStats batches_before = engine.stats();
  for (int round = 0; round < 4; ++round) {
    for (int size = 1; size <= 8; ++size) run_burst(size);
  }
  const AllocatorStats after = allocator.Stats();
  const serve::EngineStats batches_after = engine.stats();

  // The request path recycles everything: no system allocations, no
  // system frees — only free-list hits and cached returns.
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.frees_released, before.frees_released);
  // Every batch checked out (and returned) exactly one arena slab.
  EXPECT_EQ(after.arena_leases - before.arena_leases,
            batches_after.batches - batches_before.batches);
  EXPECT_GT(after.arena_leases, before.arena_leases);
  EXPECT_EQ(after.arena_leased_bytes, before.arena_leased_bytes);

  engine.Shutdown();
  allocator.SetCapBytes(saved_cap);
}

TEST(ServeTest, LatencyAndBatchMetricsExported) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  registry.ResetHistogram(ForecastEngine::kLatencyMetric);
  registry.ResetHistogram(ForecastEngine::kBatchSizeMetric);
  const int64_t requests_before = registry.CounterValue("serve/requests");

  auto model = ServableModel();
  ServeOptions opts;
  opts.threads = 1;
  opts.max_batch = 4;
  ForecastEngine engine(model.get(), kEntities, kLookback, opts);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.Forecast(MakeWindow(400 + i)).defined());
  }
  const auto latency = engine.LatencySummary();
  EXPECT_EQ(latency.count, 5);
  EXPECT_GT(latency.p50, 0.0);
  EXPECT_GE(latency.p95, latency.p50);
  EXPECT_GE(latency.p99, latency.p95);
  EXPECT_EQ(registry.CounterValue("serve/requests") - requests_before, 5);
  EXPECT_EQ(registry.Summarize(ForecastEngine::kBatchSizeMetric).count,
            engine.stats().batches);
}

TEST(ServeTest, PrewarmedPlansServeEveryLadderSize) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  const int64_t prewarm_before = registry.CounterValue("plan/prewarm");
  auto model = ServableModel();
  ServeOptions opts;
  opts.threads = 1;
  opts.max_batch = 4;  // ladder {1, 2, 4}
  ForecastEngine engine(model.get(), kEntities, kLookback, opts);
  EXPECT_EQ(engine.prewarm_ladder(), (std::vector<int64_t>{1, 2, 4}));
  EXPECT_EQ(registry.CounterValue("plan/prewarm") - prewarm_before, 3);
}

TEST(ServeTest, TrySubmitRejectsWhenFullAndShutdownDrains) {
  auto model = ServableModel();
  ServeOptions opts;
  opts.threads = 1;
  opts.max_batch = 2;
  opts.queue_capacity = 4;
  opts.start_paused = true;
  ForecastEngine engine(model.get(), kEntities, kLookback, opts);
  Tensor window = MakeWindow(91);
  std::vector<PendingForecast> slots(5);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.TrySubmit(window, -1, &slots[i]));
  }
  EXPECT_FALSE(engine.TrySubmit(window, -1, &slots[4]));
  EXPECT_EQ(engine.stats().rejected, 1);
  // Shutdown on a paused engine still answers everything it admitted.
  engine.Shutdown();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(slots[i].ready()) << "request " << i;
  }
  EXPECT_EQ(engine.stats().requests, 4);
  // Admission is closed for good.
  PendingForecast late;
  EXPECT_FALSE(engine.Submit(window, &late));
}

}  // namespace
}  // namespace focus
