// Tests for the utility layer: Status/StatusOr, tables, RNG statistics,
// and environment helpers.
#include <cstdlib>
#include <set>

#include <gtest/gtest.h>

#include "utils/env.h"
#include "utils/rng.h"
#include "utils/status.h"
#include "utils/stopwatch.h"
#include "utils/table.h"

namespace focus {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk on fire");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto inner = [](bool fail) -> Status {
    if (fail) return Status::NotFound("gone");
    return Status::Ok();
  };
  auto outer = [&](bool fail) -> Status {
    FOCUS_RETURN_IF_ERROR(inner(fail));
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(outer(true).code(), Status::Code::kNotFound);
  EXPECT_EQ(outer(false).code(), Status::Code::kInvalidArgument);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  StatusOr<int> bad(Status::Corruption("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kCorruption);
}

TEST(TableTest, AsciiAlignsColumns) {
  Table t({"A", "LongHeader"});
  t.AddRow({"1", "x"});
  t.AddRow({"222", "yy"});
  const std::string ascii = t.ToAscii();
  EXPECT_NE(ascii.find("| A   | LongHeader |"), std::string::npos);
  EXPECT_NE(ascii.find("| 222 | yy         |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, CsvAndNumberFormatting) {
  Table t({"a", "b"});
  t.AddRow({"1", Table::Num(3.14159, 2)});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,3.14\n");
  EXPECT_EQ(Table::Num(1.0, 3), "1.000");
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NE(t.ToAscii().find("only"), std::string::npos);
}

TEST(RngTest, UniformIntIsUnbiasedAcrossRange) {
  Rng rng(42);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(7);
  Rng b = a.Fork();
  // Parent and child disagree on their next draws.
  EXPECT_NE(a.NextU64(), b.NextU64());
  // Forks are deterministic given the parent state.
  Rng a2(7);
  Rng b2 = a2.Fork();
  a2.NextU64();
  Rng a3(7);
  Rng b3 = a3.Fork();
  EXPECT_EQ(b2.NextU64(), b3.NextU64());
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(EnvTest, GetEnvOrFallsBack) {
  unsetenv("FOCUS_TEST_VAR");
  EXPECT_EQ(GetEnvOr("FOCUS_TEST_VAR", "fallback"), "fallback");
  setenv("FOCUS_TEST_VAR", "set", 1);
  EXPECT_EQ(GetEnvOr("FOCUS_TEST_VAR", "fallback"), "set");
  unsetenv("FOCUS_TEST_VAR");
}

TEST(EnvTest, GetEnvIntParsesOrFallsBack) {
  setenv("FOCUS_TEST_INT", "123", 1);
  EXPECT_EQ(GetEnvIntOr("FOCUS_TEST_INT", 7), 123);
  setenv("FOCUS_TEST_INT", "not-an-int", 1);
  EXPECT_EQ(GetEnvIntOr("FOCUS_TEST_INT", 7), 7);
  unsetenv("FOCUS_TEST_INT");
  EXPECT_EQ(GetEnvIntOr("FOCUS_TEST_INT", 7), 7);
}

TEST(EnvTest, GetEnvIntRejectsMalformedValues) {
  // Trailing garbage after digits must not half-parse: "12abc" is a typo,
  // not a request for 12 threads.
  setenv("FOCUS_TEST_INT", "12abc", 1);
  EXPECT_EQ(GetEnvIntOr("FOCUS_TEST_INT", 7), 7);
  setenv("FOCUS_TEST_INT", "", 1);
  EXPECT_EQ(GetEnvIntOr("FOCUS_TEST_INT", 7), 7);
  setenv("FOCUS_TEST_INT", "  ", 1);
  EXPECT_EQ(GetEnvIntOr("FOCUS_TEST_INT", 7), 7);
  setenv("FOCUS_TEST_INT", "99999999999999999999999999", 1);  // > LONG_MAX
  EXPECT_EQ(GetEnvIntOr("FOCUS_TEST_INT", 7), 7);
  setenv("FOCUS_TEST_INT", "1.5", 1);
  EXPECT_EQ(GetEnvIntOr("FOCUS_TEST_INT", 7), 7);
  unsetenv("FOCUS_TEST_INT");
}

TEST(EnvTest, GetEnvIntAcceptsSignedAndPaddedValues) {
  setenv("FOCUS_TEST_INT", "-42", 1);
  EXPECT_EQ(GetEnvIntOr("FOCUS_TEST_INT", 7), -42);
  setenv("FOCUS_TEST_INT", "+8", 1);
  EXPECT_EQ(GetEnvIntOr("FOCUS_TEST_INT", 7), 8);
  setenv("FOCUS_TEST_INT", "  16  ", 1);  // strtol skips leading space;
  EXPECT_EQ(GetEnvIntOr("FOCUS_TEST_INT", 7), 16);  // we allow trailing too
  unsetenv("FOCUS_TEST_INT");
}

TEST(EnvTest, GetEnvIntInRangeClampsToFallback) {
  // Out-of-range values fall back rather than clamp: a wildly wrong
  // FOCUS_NUM_THREADS should be ignored loudly, not silently saturated.
  setenv("FOCUS_TEST_INT", "0", 1);
  EXPECT_EQ(GetEnvIntInRangeOr("FOCUS_TEST_INT", 7, 1, 256), 7);
  setenv("FOCUS_TEST_INT", "-3", 1);
  EXPECT_EQ(GetEnvIntInRangeOr("FOCUS_TEST_INT", 7, 1, 256), 7);
  setenv("FOCUS_TEST_INT", "1000", 1);
  EXPECT_EQ(GetEnvIntInRangeOr("FOCUS_TEST_INT", 7, 1, 256), 7);
  setenv("FOCUS_TEST_INT", "256", 1);  // boundary is inclusive
  EXPECT_EQ(GetEnvIntInRangeOr("FOCUS_TEST_INT", 7, 1, 256), 256);
  setenv("FOCUS_TEST_INT", "1", 1);
  EXPECT_EQ(GetEnvIntInRangeOr("FOCUS_TEST_INT", 7, 1, 256), 1);
  unsetenv("FOCUS_TEST_INT");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
  EXPECT_NEAR(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1e3,
              sw.ElapsedMillis() * 0.5 + 1.0);
  const double before = sw.ElapsedSeconds();
  sw.Reset();
  EXPECT_LE(sw.ElapsedSeconds(), before + 1.0);
}

}  // namespace
}  // namespace focus
