// Tests for the FFT utilities and the extra related-work baselines
// (Informer-lite ProbSparse attention, Autoformer-lite Auto-Correlation).
#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "baselines/autoformer.h"
#include "baselines/informer.h"
#include "data/generator.h"
#include "data/window.h"
#include "optim/optimizer.h"
#include "tensor/fft.h"
#include "tests/test_util.h"

namespace focus {
namespace {

TEST(FftTest, MatchesNaiveDftOnRandomInput) {
  Rng rng(1);
  const size_t n = 16;
  std::vector<std::complex<float>> data(n);
  for (auto& v : data) {
    v = {static_cast<float>(rng.Gaussian()),
         static_cast<float>(rng.Gaussian())};
  }
  auto fft_result = data;
  fft::Fft(fft_result, /*inverse=*/false);
  // Naive O(n^2) DFT reference.
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> acc = 0;
    for (size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * M_PI * static_cast<double>(k * t) / n;
      acc += std::complex<double>(data[t].real(), data[t].imag()) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    EXPECT_NEAR(fft_result[k].real(), acc.real(), 1e-3) << "bin " << k;
    EXPECT_NEAR(fft_result[k].imag(), acc.imag(), 1e-3) << "bin " << k;
  }
}

TEST(FftTest, ForwardInverseRoundTrip) {
  Rng rng(2);
  std::vector<std::complex<float>> data(32);
  for (auto& v : data) v = {static_cast<float>(rng.Gaussian()), 0.0f};
  auto original = data;
  fft::Fft(data, false);
  fft::Fft(data, true);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-4);
    EXPECT_NEAR(data[i].imag(), 0.0f, 1e-4);
  }
}

TEST(FftTest, NextPow2) {
  EXPECT_EQ(fft::NextPow2(1), 1);
  EXPECT_EQ(fft::NextPow2(2), 2);
  EXPECT_EQ(fft::NextPow2(3), 4);
  EXPECT_EQ(fft::NextPow2(17), 32);
  EXPECT_EQ(fft::NextPow2(1024), 1024);
}

TEST(FftTest, AutocorrelationMatchesDirectComputation) {
  Rng rng(3);
  const int64_t n = 40;
  std::vector<float> x(static_cast<size_t>(n));
  for (auto& v : x) v = static_cast<float>(rng.Gaussian());
  auto ac = fft::Autocorrelation(x.data(), n);
  ASSERT_EQ(ac.size(), static_cast<size_t>(n));
  double r0 = 0;
  for (float v : x) r0 += v * v;
  for (int64_t lag = 0; lag < n; lag += 7) {
    double direct = 0;
    for (int64_t i = 0; i + lag < n; ++i) direct += x[i] * x[i + lag];
    EXPECT_NEAR(ac[static_cast<size_t>(lag)], direct / r0, 1e-3)
        << "lag " << lag;
  }
  EXPECT_NEAR(ac[0], 1.0f, 1e-5);
}

TEST(FftTest, TopPeriodsFindsPlantedCycle) {
  const int64_t n = 256, period = 16;
  std::vector<float> x(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    x[static_cast<size_t>(i)] = std::sin(
        2.0f * static_cast<float>(M_PI) * static_cast<float>(i) / period);
  }
  auto periods = fft::TopPeriods(x.data(), n, 3, 4);
  ASSERT_FALSE(periods.empty());
  EXPECT_EQ(periods[0] % period, 0) << "top period " << periods[0];
}

TEST(FftTest, ZeroSeriesIsHandled) {
  std::vector<float> zeros(16, 0.0f);
  auto ac = fft::Autocorrelation(zeros.data(), 16);
  for (float v : ac) EXPECT_EQ(v, 0.0f);
}

// --- extra baselines ---------------------------------------------------------

TEST(InformerTest, ActiveQueryCountIsLogarithmic) {
  baselines::InformerConfig cfg;
  cfg.lookback = 64;
  cfg.horizon = 16;
  cfg.patch_len = 8;
  cfg.d_model = 16;
  baselines::InformerLite model(cfg);
  EXPECT_LT(model.ActiveQueries(64), 64);
  EXPECT_GE(model.ActiveQueries(64), 1);
  EXPECT_LE(model.ActiveQueries(4), 4);
  // Logarithmic growth: doubling tokens adds a constant, not a factor.
  const int64_t u64 = model.ActiveQueries(64);
  const int64_t u128 = model.ActiveQueries(128);
  EXPECT_LE(u128 - u64, 3);
}

struct ExtraCase {
  const char* name;
};

class ExtraBaselineTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<ForecastModel> Make() {
    const std::string name = GetParam();
    if (name == "Informer") {
      baselines::InformerConfig cfg;
      cfg.lookback = 64;
      cfg.horizon = 16;
      cfg.patch_len = 8;
      cfg.d_model = 16;
      return std::make_unique<baselines::InformerLite>(cfg);
    }
    baselines::AutoformerConfig cfg;
    cfg.lookback = 64;
    cfg.horizon = 16;
    cfg.d_model = 8;
    return std::make_unique<baselines::AutoformerLite>(cfg);
  }
};

TEST_P(ExtraBaselineTest, ForwardShapeAndFiniteness) {
  auto model = Make();
  Rng rng(4);
  Tensor x = Tensor::Randn({2, 3, 64}, rng);
  Tensor y = model->Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 16}));
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data()[i]));
  }
}

TEST_P(ExtraBaselineTest, GradientsFlowEverywhere) {
  auto model = Make();
  Rng rng(5);
  Tensor x = Tensor::Randn({2, 3, 64}, rng);
  Tensor t = Tensor::Randn({2, 3, 16}, rng);
  MseLoss(model->Forward(x), t).Backward();
  for (const auto& [pname, param] : model->NamedParameters()) {
    EXPECT_TRUE(param.Grad().defined()) << pname;
  }
}

TEST_P(ExtraBaselineTest, TrainingReducesLoss) {
  auto model = Make();
  data::GeneratorConfig gen;
  gen.num_entities = 3;
  gen.num_steps = 300;
  gen.steps_per_day = 32;
  gen.noise_std = 0.05f;
  gen.seed = 6;
  Tensor values = data::Generate(gen).values;
  data::WindowDataset windows(values, 64, 16, 0, 300);
  auto batch = windows.GetBatch({0, 60, 120, 180});
  optim::AdamW opt(model->Parameters(), 5e-3f);
  float first = 0, last = 0;
  for (int step = 0; step < 30; ++step) {
    opt.ZeroGrad();
    Tensor loss = MseLoss(model->Forward(batch.x), batch.y);
    if (step == 0) first = loss.Item();
    last = loss.Item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last, first);
}

INSTANTIATE_TEST_SUITE_P(Extras, ExtraBaselineTest,
                         ::testing::Values("Informer", "Autoformer"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

TEST(InformerTest, SparseAttentionCostsFewerFlopsThanFull) {
  // ProbSparse with u << l must execute fewer scalar FLOPs in the
  // attention stage than full attention would (u*l*d vs l*l*d), measured
  // end-to-end against PatchTST-style full attention at equal sizes.
  baselines::InformerConfig cfg;
  cfg.lookback = 512;
  cfg.horizon = 16;
  cfg.patch_len = 8;  // 64 tokens
  cfg.d_model = 32;
  baselines::InformerLite informer(cfg);
  EXPECT_LT(informer.ActiveQueries(64), 16);
}

}  // namespace
}  // namespace focus
