// Error-contract tests: programmer errors must abort with a diagnostic
// (FOCUS_CHECK), never corrupt state or return garbage. Uses gtest death
// tests.
#include <gtest/gtest.h>

#include "cluster/segment_clustering.h"
#include "core/focus_model.h"
#include "data/window.h"
#include "nn/layers.h"
#include "tensor/ops.h"

namespace focus {
namespace {

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, ShapeMismatchedAddAborts) {
  Tensor a = Tensor::Ones({2, 3});
  Tensor b = Tensor::Ones({2, 4});
  EXPECT_DEATH(Add(a, b), "broadcast");
}

TEST(ContractsDeathTest, MatMulInnerDimMismatchAborts) {
  Tensor a = Tensor::Ones({2, 3});
  Tensor b = Tensor::Ones({4, 2});
  EXPECT_DEATH(MatMul(a, b), "inner-dim mismatch");
}

TEST(ContractsDeathTest, ReshapeNumelMismatchAborts) {
  Tensor a = Tensor::Ones({6});
  EXPECT_DEATH(Reshape(a, {4}), "Reshape");
}

TEST(ContractsDeathTest, SliceOutOfRangeAborts) {
  Tensor a = Tensor::Ones({4});
  EXPECT_DEATH(Slice(a, 0, 2, 9), "out of range");
}

TEST(ContractsDeathTest, IndexSelectOutOfRangeAborts) {
  Tensor a = Tensor::Ones({4, 2});
  EXPECT_DEATH(IndexSelect(a, 0, {5}), "out of range");
}

TEST(ContractsDeathTest, ItemOnNonScalarAborts) {
  Tensor a = Tensor::Ones({3});
  EXPECT_DEATH(a.Item(), "non-scalar");
}

TEST(ContractsDeathTest, BackwardOnNonScalarAborts) {
  Tensor a = Tensor::Ones({3});
  a.SetRequiresGrad(true);
  Tensor y = Mul(a, a);
  EXPECT_DEATH(y.Backward(), "scalar");
}

TEST(ContractsDeathTest, BackwardWithoutGradAborts) {
  Tensor a = Tensor::Ones({1});
  EXPECT_DEATH(a.Backward(), "does not require grad");
}

TEST(ContractsDeathTest, UndefinedTensorAccessAborts) {
  Tensor t;
  EXPECT_DEATH(t.shape(), "check failed");
}

TEST(ContractsDeathTest, LinearWrongInputDimAborts) {
  Rng rng(1);
  nn::Linear lin(4, 2, rng);
  EXPECT_DEATH(lin.Forward(Tensor::Ones({2, 5})), "expected last dim");
}

TEST(ContractsDeathTest, FocusLookbackMismatchAborts) {
  Rng rng(2);
  core::FocusConfig cfg;
  cfg.lookback = 32;
  cfg.horizon = 8;
  cfg.num_entities = 2;
  cfg.patch_len = 8;
  cfg.d_model = 16;
  cfg.readout_queries = 2;
  core::FocusModel model(cfg, Tensor::Randn({4, 8}, rng));
  EXPECT_DEATH(model.Forward(Tensor::Ones({1, 2, 64})), "check failed");
}

TEST(ContractsDeathTest, FocusPatchMustDivideLookback) {
  Rng rng(3);
  core::FocusConfig cfg;
  cfg.lookback = 30;  // not divisible by 8
  cfg.patch_len = 8;
  cfg.num_entities = 2;
  cfg.d_model = 16;
  EXPECT_DEATH(core::FocusModel(cfg, Tensor::Randn({4, 8}, rng)),
               "must divide");
}

TEST(ContractsDeathTest, WindowRangeTooShortAborts) {
  Tensor values = Tensor::Ones({2, 20});
  EXPECT_DEATH(data::WindowDataset(values, 16, 8, 0, 20), "range too short");
}

TEST(ContractsDeathTest, ClusteringNeedsEnoughSegments) {
  Rng rng(4);
  Tensor segments = Tensor::Randn({3, 8}, rng);
  cluster::ClusteringConfig cfg;
  cfg.segment_length = 8;
  cfg.num_prototypes = 10;  // > segment count
  EXPECT_DEATH(cluster::SegmentClustering(cfg).Fit(segments),
               "at least k segments");
}

}  // namespace
}  // namespace focus
